//! Fast matrix multiplication core: the paper's primary contribution.
//!
//! A fast matrix multiplication (FMM) algorithm is a partition
//! `<m̃, k̃, ñ>` plus a coefficient triple `[[U, V, W]]` (paper §3.1). This
//! crate provides:
//!
//! * [`coeffs::CoeffMatrix`] — exact dyadic-rational coefficient matrices
//!   with the Kronecker product used for multi-level composition (§3.2–3.5);
//! * [`algorithm::FmmAlgorithm`] — a verified `[[U, V, W]]` triple;
//! * [`brent`] — exact verification against the Brent equations;
//! * [`compose`] — direct sums, nesting, and the symmetry transforms that
//!   generate algorithm families from base algorithms;
//! * [`registry`] — the named algorithm family of the paper's Figure 2;
//! * [`plan::FmmPlan`] — an L-level algorithm with composed coefficients;
//! * [`indexing`] — recursive block (Morton-like) storage indexing (§3.3);
//! * [`peeling`] — dynamic peeling for arbitrary problem sizes (§4.1);
//! * [`executor`] — the Naive / AB / ABC implementations built on the
//!   `fmm-gemm` packing and micro-kernel primitives (§4.1, Fig. 1 right);
//! * [`tasks`] — the BFS/DFS/hybrid scheduling vocabulary and per-task
//!   workspace shapes consumed by the `fmm-sched` scheduler.
//!
//! Plans and coefficients are dtype-free (`U`/`V`/`W` stay `f64`); the
//! execution machinery ([`executor::FmmContext`], the arena, the block
//! grids, all three variants) is generic over `fmm_gemm::GemmScalar`
//! (`f64` default, `f32` supported), with coefficients narrowed to the
//! execution scalar at [`executor::gather_terms`].
//!
//! # Example
//!
//! ```
//! use fmm_core::prelude::*;
//! use fmm_dense::{fill, Matrix};
//!
//! let strassen = fmm_core::registry::strassen();
//! let plan = FmmPlan::new(vec![strassen]);
//! let a = fill::bench_workload(64, 64, 1);
//! let b = fill::bench_workload(64, 64, 2);
//! let mut c = Matrix::zeros(64, 64);
//! let mut ctx = FmmContext::with_defaults();
//! fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Abc, &mut ctx);
//!
//! let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
//! assert!(fmm_dense::norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-10);
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]

pub mod algorithm;
pub mod brent;
pub mod coeffs;
pub mod compose;
pub mod counts;
pub mod executor;
pub mod indexing;
pub mod json;
pub mod peeling;
pub mod plan;
pub mod registry;
pub mod tasks;

pub use algorithm::FmmAlgorithm;
pub use coeffs::CoeffMatrix;
pub use executor::{fmm_execute, fmm_execute_parallel, FmmContext, Variant};
pub use plan::FmmPlan;
pub use tasks::Strategy;

/// Convenient glob import for downstream users.
pub mod prelude {
    pub use crate::algorithm::FmmAlgorithm;
    pub use crate::coeffs::CoeffMatrix;
    pub use crate::executor::{fmm_execute, fmm_execute_parallel, FmmContext, Variant};
    pub use crate::plan::FmmPlan;
    pub use crate::registry;
    pub use crate::tasks::Strategy;
}
