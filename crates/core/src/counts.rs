//! Operation counts for plans — the inputs to the performance model
//! (paper Fig. 5's `nnz(⊗U)`, `nnz(⊗V)`, `nnz(⊗W)`, `R_L` quantities).

use crate::plan::FmmPlan;

/// Static counts of a composed L-level plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanCounts {
    /// `R_L = ∏ R_l` — number of block products.
    pub r: usize,
    /// `nnz(⊗U)`.
    pub nnz_u: usize,
    /// `nnz(⊗V)`.
    pub nnz_v: usize,
    /// `nnz(⊗W)`.
    pub nnz_w: usize,
    /// `M̃_L = ∏ m̃_l`.
    pub mt: usize,
    /// `K̃_L = ∏ k̃_l`.
    pub kt: usize,
    /// `Ñ_L = ∏ ñ_l`.
    pub nt: usize,
}

impl PlanCounts {
    /// Extract the counts from a plan.
    pub fn of(plan: &FmmPlan) -> Self {
        let (mt, kt, nt) = plan.partition_dims();
        Self {
            r: plan.rank(),
            nnz_u: plan.u().nnz(),
            nnz_v: plan.v().nnz(),
            nnz_w: plan.w().nnz(),
            mt,
            kt,
            nt,
        }
    }

    /// Block-level additions on the A side: `nnz(⊗U) - R_L`
    /// (each product with `q` non-zero U entries costs `q - 1` additions).
    pub fn a_additions(&self) -> usize {
        self.nnz_u - self.r
    }

    /// Block-level additions on the B side: `nnz(⊗V) - R_L`.
    pub fn b_additions(&self) -> usize {
        self.nnz_v - self.r
    }

    /// Block-level updates of `C`: `nnz(⊗W)`.
    pub fn c_updates(&self) -> usize {
        self.nnz_w
    }
}

/// Classical flop count `2·m·n·k` — the numerator of "Effective GFLOPS"
/// (paper Fig. 5, eq. 1): FMM implementations are *credited* with the
/// classical count so that speedups show up as GFLOPS above the machine
/// peak.
pub fn classical_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Effective GFLOPS: `2·m·n·k / time / 1e9`.
pub fn effective_gflops(m: usize, k: usize, n: usize, seconds: f64) -> f64 {
    classical_flops(m, k, n) / seconds / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::strassen;

    #[test]
    fn strassen_counts() {
        let plan = FmmPlan::new(vec![strassen()]);
        let c = PlanCounts::of(&plan);
        assert_eq!(c.r, 7);
        assert_eq!(c.nnz_u, 12);
        assert_eq!(c.nnz_v, 12);
        assert_eq!(c.nnz_w, 12);
        assert_eq!(c.a_additions(), 5); // the 5 A-side additions of eq. (2)
        assert_eq!(c.b_additions(), 5);
        assert_eq!(c.c_updates(), 12); // 12 C updates in eq. (2)
        assert_eq!((c.mt, c.kt, c.nt), (2, 2, 2));
    }

    #[test]
    fn two_level_counts_square() {
        let plan = FmmPlan::uniform(strassen(), 2);
        let c = PlanCounts::of(&plan);
        assert_eq!(c.r, 49);
        assert_eq!(c.nnz_u, 144); // 12^2
        assert_eq!(c.nnz_w, 144);
        assert_eq!((c.mt, c.kt, c.nt), (4, 4, 4));
    }

    #[test]
    fn effective_gflops_scales() {
        let g = effective_gflops(1000, 1000, 1000, 1.0);
        assert!((g - 2.0).abs() < 1e-12);
        let g2 = effective_gflops(1000, 1000, 1000, 0.5);
        assert!((g2 - 4.0).abs() < 1e-12);
    }
}
