//! Dynamic peeling for problem sizes not divisible by the partition dims
//! (paper §4.1, citing Thottethodi et al. [16]).
//!
//! For `C(m x n) += A(m x k) · B(k x n)` under aggregate partition dims
//! `(M̃, K̃, Ñ)`, the problem splits into a *core* of dimensions
//! `(⌊m/M̃⌋·M̃, ⌊k/K̃⌋·K̃, ⌊n/Ñ⌋·Ñ)` handled by FMM plus at most three
//! *rim* GEMM calls covering the fringes — no padding, no extra workspace:
//!
//! ```text
//! C[0..m', 0..n']  += A[0..m', 0..k'] B[0..k', 0..n']   (core: FMM)
//! C[0..m', 0..n']  += A[0..m', k'..k] B[k'..k, 0..n']   (rim: k-fringe)
//! C[0..m', n'..n]  += A[0..m', 0..k]  B[0..k,  n'..n]   (rim: n-fringe)
//! C[m'..m, 0..n]   += A[m'..m, 0..k]  B[0..k,  0..n]    (rim: m-fringe)
//! ```

/// A rectangular region of the three operands for one rim GEMM call:
/// `C[c_rows, c_cols] += A[c_rows, k_range] · B[k_range, c_cols]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RimCall {
    /// Row range of `C` (and of `A`).
    pub rows: std::ops::Range<usize>,
    /// Column range of `C` (and of `B`).
    pub cols: std::ops::Range<usize>,
    /// Inner (`k`) range of `A`'s columns and `B`'s rows.
    pub inner: std::ops::Range<usize>,
}

/// The decomposition produced by [`peel`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeelPlan {
    /// Core dimensions `(m', k', n')`, each a multiple of the aggregate
    /// partition dims. Any may be zero (then the core is skipped).
    pub core: (usize, usize, usize),
    /// Rim GEMM calls, in execution order.
    pub rims: Vec<RimCall>,
}

impl PeelPlan {
    /// True if the whole problem is handled by the FMM core.
    pub fn is_exact(&self) -> bool {
        self.rims.is_empty()
    }

    /// Total scalar multiply-adds delegated to rim GEMMs.
    pub fn rim_flops(&self) -> usize {
        self.rims.iter().map(|r| r.rows.len() * r.cols.len() * r.inner.len()).sum()
    }
}

/// Compute the peeling decomposition of `(m, k, n)` for aggregate partition
/// dims `(mt, kt, nt)`.
pub fn peel(m: usize, k: usize, n: usize, (mt, kt, nt): (usize, usize, usize)) -> PeelPlan {
    assert!(mt >= 1 && kt >= 1 && nt >= 1, "partition dims must be positive");
    let mc = (m / mt) * mt;
    let kc = (k / kt) * kt;
    let nc = (n / nt) * nt;
    let mut rims = Vec::new();
    // k-fringe: completes the core rows/cols to full depth k.
    if kc < k && mc > 0 && nc > 0 {
        rims.push(RimCall { rows: 0..mc, cols: 0..nc, inner: kc..k });
    }
    // n-fringe: remaining columns, full depth.
    if nc < n && mc > 0 {
        rims.push(RimCall { rows: 0..mc, cols: nc..n, inner: 0..k });
    }
    // m-fringe: remaining rows, full width and depth.
    if mc < m {
        rims.push(RimCall { rows: mc..m, cols: 0..n, inner: 0..k });
    }
    PeelPlan { core: (mc, kc, nc), rims }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Verify the core + rims tile the full iteration space
    /// `{(i, j, p) : i < m, j < n, p < k}` exactly once.
    fn assert_exact_cover(m: usize, k: usize, n: usize, dims: (usize, usize, usize)) {
        let plan = peel(m, k, n, dims);
        let mut count = vec![0u8; m * k * n];
        let (mc, kc, nc) = plan.core;
        for i in 0..mc {
            for j in 0..nc {
                for p in 0..kc {
                    count[(i * n + j) * k + p] += 1;
                }
            }
        }
        for rim in &plan.rims {
            for i in rim.rows.clone() {
                for j in rim.cols.clone() {
                    for p in rim.inner.clone() {
                        count[(i * n + j) * k + p] += 1;
                    }
                }
            }
        }
        assert!(
            count.iter().all(|&c| c == 1),
            "m={m} k={k} n={n} dims={dims:?}: cover counts {:?}",
            count.iter().filter(|&&c| c != 1).count()
        );
    }

    #[test]
    fn divisible_sizes_need_no_rims() {
        let plan = peel(8, 8, 8, (2, 2, 2));
        assert!(plan.is_exact());
        assert_eq!(plan.core, (8, 8, 8));
        assert_eq!(plan.rim_flops(), 0);
    }

    #[test]
    fn single_fringe_each_dimension() {
        let p_k = peel(4, 5, 4, (2, 2, 2));
        assert_eq!(p_k.core, (4, 4, 4));
        assert_eq!(p_k.rims.len(), 1);
        assert_eq!(p_k.rims[0].inner, 4..5);

        let p_n = peel(4, 4, 5, (2, 2, 2));
        assert_eq!(p_n.rims.len(), 1);
        assert_eq!(p_n.rims[0].cols, 4..5);

        let p_m = peel(5, 4, 4, (2, 2, 2));
        assert_eq!(p_m.rims.len(), 1);
        assert_eq!(p_m.rims[0].rows, 4..5);
    }

    #[test]
    fn all_fringes_cover_exactly() {
        for (m, k, n) in [(5, 5, 5), (7, 9, 11), (6, 5, 4), (2, 3, 2), (13, 13, 13)] {
            assert_exact_cover(m, k, n, (2, 2, 2));
            assert_exact_cover(m, k, n, (2, 3, 2));
            assert_exact_cover(m, k, n, (3, 2, 4));
        }
    }

    #[test]
    fn too_small_problem_is_all_rim() {
        // m < mt: core is empty, one rim covers everything.
        let plan = peel(1, 8, 8, (2, 2, 2));
        assert_eq!(plan.core.0, 0);
        assert_eq!(plan.rims.len(), 1);
        assert_eq!(plan.rims[0].rows, 0..1);
        assert_eq!(plan.rim_flops(), 64);
        assert_exact_cover(1, 8, 8, (2, 2, 2));
    }

    #[test]
    fn zero_dims_produce_empty_plans() {
        let plan = peel(0, 4, 4, (2, 2, 2));
        assert_eq!(plan.core, (0, 4, 4));
        assert!(plan.rims.is_empty());
    }

    #[test]
    fn rim_flops_accounts_fringe_volume() {
        let plan = peel(5, 4, 4, (2, 2, 2));
        // m-fringe: 1 row x 4 cols x 4 depth.
        assert_eq!(plan.rim_flops(), 16);
    }
}
