//! Constructions that derive new FMM algorithms from existing ones.
//!
//! Four families of constructions, all routed through the verifying
//! constructor so a bug here cannot silently produce a wrong algorithm:
//!
//! * [`classical`] — the trivial `<m̃,k̃,ñ>` algorithm of rank `m̃k̃ñ`;
//! * [`nest`] — Kronecker-product composition (`<m̃m̃', k̃k̃', ññ'>` of rank
//!   `R·R'`), the paper's multi-level operator flattened into one level;
//! * [`stack_m`] / [`stack_k`] / [`stack_n`] — direct sums along one
//!   dimension (e.g. `<m̃,k̃,ñ₁+ñ₂>` of rank `R₁+R₂`), which is how the
//!   rank-11 `<2,2,3>` family arises from Strassen plus a classical strip;
//! * [`rotate`] / [`transpose`] — the symmetries of the matrix
//!   multiplication tensor: any `<m̃,k̃,ñ>` algorithm yields algorithms of
//!   equal rank for every permutation of `(m̃,k̃,ñ)`.

use crate::algorithm::FmmAlgorithm;
use crate::coeffs::CoeffMatrix;

/// The classical (non-fast) `<m̃,k̃,ñ>` algorithm: one sub-multiplication
/// `A_{iκ}·B_{κj}` per `(i,κ,j)` triple, `R = m̃k̃ñ`.
pub fn classical(mt: usize, kt: usize, nt: usize) -> FmmAlgorithm {
    let r_count = mt * kt * nt;
    let mut u = CoeffMatrix::zeros(mt * kt, r_count);
    let mut v = CoeffMatrix::zeros(kt * nt, r_count);
    let mut w = CoeffMatrix::zeros(mt * nt, r_count);
    let mut r = 0;
    for i in 0..mt {
        for ka in 0..kt {
            for j in 0..nt {
                u.set(i * kt + ka, r, 1.0);
                v.set(ka * nt + j, r, 1.0);
                w.set(i * nt + j, r, 1.0);
                r += 1;
            }
        }
    }
    FmmAlgorithm::new(format!("classical<{mt},{kt},{nt}>"), (mt, kt, nt), u, v, w)
        .expect("classical algorithm is always valid")
}

/// Kronecker-product composition: run `outer` with each sub-multiplication
/// performed by `inner`. Dims multiply, ranks multiply (paper §3.4).
///
/// The raw Kronecker product indexes submatrices in *recursive block*
/// (Morton) order — exactly what [`crate::plan::FmmPlan`] executes against.
/// To obtain a self-contained *one-level* algorithm in the standard
/// row-major flattening, the rows are permuted from Morton order back to
/// row-major via [`BlockGrid`].
pub fn nest(outer: &FmmAlgorithm, inner: &FmmAlgorithm) -> FmmAlgorithm {
    use crate::indexing::BlockGrid;
    let (m1, k1, n1) = outer.dims();
    let (m2, k2, n2) = inner.dims();
    let (m, k, n) = (m1 * m2, k1 * k2, n1 * n2);
    let a_grid = BlockGrid::new(vec![(m1, k1), (m2, k2)]);
    let b_grid = BlockGrid::new(vec![(k1, n1), (k2, n2)]);
    let c_grid = BlockGrid::new(vec![(m1, n1), (m2, n2)]);
    let u = outer.u().kron(inner.u()).remap_rows(m * k, |rm| a_grid.flat(rm / k, rm % k));
    let v = outer.v().kron(inner.v()).remap_rows(k * n, |rm| b_grid.flat(rm / n, rm % n));
    let w = outer.w().kron(inner.w()).remap_rows(m * n, |rm| c_grid.flat(rm / n, rm % n));
    FmmAlgorithm::new(format!("({})⊗({})", outer.name(), inner.name()), (m, k, n), u, v, w)
        .expect("Kronecker product of valid algorithms is valid")
}

/// Direct sum along `ñ`: `a` computes the first `ñ_a` block-columns of `C`,
/// `b` the remaining `ñ_b` (they share `A`). Requires matching `(m̃, k̃)`.
pub fn stack_n(a: &FmmAlgorithm, b: &FmmAlgorithm) -> FmmAlgorithm {
    let (m1, k1, n1) = a.dims();
    let (m2, k2, n2) = b.dims();
    assert_eq!((m1, k1), (m2, k2), "stack_n requires equal (m̃, k̃)");
    let n = n1 + n2;
    let ra = a.rank();
    let rb = b.rank();
    let u = a.u().hcat(b.u());
    let v = a
        .v()
        .embed(k1 * n, ra + rb, 0, |row| {
            let (kk, j) = (row / n1, row % n1);
            kk * n + j
        })
        .merge_disjoint(&b.v().embed(k1 * n, ra + rb, ra, |row| {
            let (kk, j) = (row / n2, row % n2);
            kk * n + n1 + j
        }));
    let w = a
        .w()
        .embed(m1 * n, ra + rb, 0, |row| {
            let (i, j) = (row / n1, row % n1);
            i * n + j
        })
        .merge_disjoint(&b.w().embed(m1 * n, ra + rb, ra, |row| {
            let (i, j) = (row / n2, row % n2);
            i * n + n1 + j
        }));
    FmmAlgorithm::new(format!("({})⊕n({})", a.name(), b.name()), (m1, k1, n), u, v, w)
        .expect("direct sum along n of valid algorithms is valid")
}

/// Direct sum along `m̃`: `a` computes the top `m̃_a` block-rows of `C`,
/// `b` the bottom `m̃_b` (they share `B`). Requires matching `(k̃, ñ)`.
pub fn stack_m(a: &FmmAlgorithm, b: &FmmAlgorithm) -> FmmAlgorithm {
    let (m1, k1, n1) = a.dims();
    let (m2, k2, n2) = b.dims();
    assert_eq!((k1, n1), (k2, n2), "stack_m requires equal (k̃, ñ)");
    let m = m1 + m2;
    let ra = a.rank();
    let rb = b.rank();
    let v = a.v().hcat(b.v());
    // Row flattening i*k̃+κ is unchanged for a's rows (i < m1) and shifted
    // by m1 block-rows for b's.
    let u = a.u().embed(m * k1, ra + rb, 0, |row| row).merge_disjoint(&b.u().embed(
        m * k1,
        ra + rb,
        ra,
        |row| m1 * k1 + row,
    ));
    let w = a.w().embed(m * n1, ra + rb, 0, |row| row).merge_disjoint(&b.w().embed(
        m * n1,
        ra + rb,
        ra,
        |row| m1 * n1 + row,
    ));
    FmmAlgorithm::new(format!("({})⊕m({})", a.name(), b.name()), (m, k1, n1), u, v, w)
        .expect("direct sum along m of valid algorithms is valid")
}

/// Direct sum along `k̃`: `C = A_left·B_top + A_right·B_bottom`, where `a`
/// handles the first `k̃_a` block-columns of `A` and `b` the rest (they
/// share `C`). Requires matching `(m̃, ñ)`.
pub fn stack_k(a: &FmmAlgorithm, b: &FmmAlgorithm) -> FmmAlgorithm {
    let (m1, k1, n1) = a.dims();
    let (m2, k2, n2) = b.dims();
    assert_eq!((m1, n1), (m2, n2), "stack_k requires equal (m̃, ñ)");
    let k = k1 + k2;
    let ra = a.rank();
    let rb = b.rank();
    let w = a.w().hcat(b.w());
    let u = a
        .u()
        .embed(m1 * k, ra + rb, 0, |row| {
            let (i, kk) = (row / k1, row % k1);
            i * k + kk
        })
        .merge_disjoint(&b.u().embed(m1 * k, ra + rb, ra, |row| {
            let (i, kk) = (row / k2, row % k2);
            i * k + k1 + kk
        }));
    let v = a.v().embed(k * n1, ra + rb, 0, |row| row).merge_disjoint(&b.v().embed(
        k * n1,
        ra + rb,
        ra,
        |row| k1 * n1 + row,
    ));
    FmmAlgorithm::new(format!("({})⊕k({})", a.name(), b.name()), (m1, k, n1), u, v, w)
        .expect("direct sum along k of valid algorithms is valid")
}

/// Cyclic symmetry: a `<m̃,k̃,ñ>` algorithm becomes a `<k̃,ñ,m̃>` algorithm
/// of the same rank, via `U' = V`, `V'[(j,i)] = W[(i,j)]`,
/// `W'[(κ,i)] = U[(i,κ)]`.
pub fn rotate(a: &FmmAlgorithm) -> FmmAlgorithm {
    let (mt, kt, nt) = a.dims();
    let u = a.v().clone();
    let v = a.w().remap_rows(nt * mt, |row| {
        let (j, i) = (row / mt, row % mt);
        i * nt + j
    });
    let w = a.u().remap_rows(kt * mt, |row| {
        let (kk, i) = (row / mt, row % mt);
        i * kt + kk
    });
    FmmAlgorithm::new(format!("rot({})", a.name()), (kt, nt, mt), u, v, w)
        .expect("cyclic rotation of a valid algorithm is valid")
}

/// Transpose symmetry (`Cᵀ = BᵀAᵀ`): a `<m̃,k̃,ñ>` algorithm becomes a
/// `<ñ,k̃,m̃>` algorithm of the same rank.
pub fn transpose(a: &FmmAlgorithm) -> FmmAlgorithm {
    let (mt, kt, nt) = a.dims();
    let u = a.v().remap_rows(nt * kt, |row| {
        let (j, kk) = (row / kt, row % kt);
        kk * nt + j
    });
    let v = a.u().remap_rows(kt * mt, |row| {
        let (kk, i) = (row / mt, row % mt);
        i * kt + kk
    });
    let w = a.w().remap_rows(nt * mt, |row| {
        let (j, i) = (row / mt, row % mt);
        i * nt + j
    });
    FmmAlgorithm::new(format!("t({})", a.name()), (nt, kt, mt), u, v, w)
        .expect("transpose of a valid algorithm is valid")
}

/// Derive an algorithm for target dims `(m̃,k̃,ñ)` from `a` if the targets
/// are a permutation of `a.dims()`; returns `None` otherwise.
pub fn to_dims(a: &FmmAlgorithm, target: (usize, usize, usize)) -> Option<FmmAlgorithm> {
    let candidates = all_orientations(a);
    candidates.into_iter().find(|c| c.dims() == target)
}

/// All six symmetry orientations of `a` (some may coincide when dims repeat).
pub fn all_orientations(a: &FmmAlgorithm) -> Vec<FmmAlgorithm> {
    let r1 = rotate(a);
    let r2 = rotate(&r1);
    let t0 = transpose(a);
    let t1 = transpose(&r1);
    let t2 = transpose(&r2);
    vec![a.clone(), r1, r2, t0, t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::strassen;

    #[test]
    fn classical_has_rank_mkn() {
        let a = classical(2, 3, 4);
        assert_eq!(a.rank(), 24);
        assert_eq!(a.dims(), (2, 3, 4));
    }

    #[test]
    fn nest_multiplies_dims_and_ranks() {
        let s = strassen();
        let two_level = nest(&s, &s);
        assert_eq!(two_level.dims(), (4, 4, 4));
        assert_eq!(two_level.rank(), 49);
    }

    #[test]
    fn nest_with_classical_strip() {
        let s = strassen();
        let strip = classical(1, 1, 2);
        let a = nest(&s, &strip);
        assert_eq!(a.dims(), (2, 2, 4));
        assert_eq!(a.rank(), 14);
    }

    #[test]
    fn stack_n_gives_rank_11_for_223() {
        let a = stack_n(&strassen(), &classical(2, 2, 1));
        assert_eq!(a.dims(), (2, 2, 3));
        assert_eq!(a.rank(), 11); // matches the paper's <2,3,2>-family rank
    }

    #[test]
    fn stack_m_gives_expected_dims() {
        let a = stack_m(&strassen(), &classical(1, 2, 2));
        assert_eq!(a.dims(), (3, 2, 2));
        assert_eq!(a.rank(), 11);
    }

    #[test]
    fn stack_k_gives_expected_dims() {
        let a = stack_k(&strassen(), &classical(2, 1, 2));
        assert_eq!(a.dims(), (2, 3, 2));
        assert_eq!(a.rank(), 11);
    }

    #[test]
    #[should_panic(expected = "stack_n requires")]
    fn stack_n_rejects_mismatched_mk() {
        let _ = stack_n(&strassen(), &classical(2, 3, 1));
    }

    #[test]
    fn rotate_cycles_dims() {
        let a = stack_n(&strassen(), &classical(2, 2, 1)); // <2,2,3>
        let r1 = rotate(&a);
        assert_eq!(r1.dims(), (2, 3, 2));
        assert_eq!(r1.rank(), 11);
        let r2 = rotate(&r1);
        assert_eq!(r2.dims(), (3, 2, 2));
        let r3 = rotate(&r2);
        assert_eq!(r3.dims(), (2, 2, 3));
    }

    #[test]
    fn transpose_swaps_m_and_n() {
        let a = stack_n(&strassen(), &classical(2, 2, 1)); // <2,2,3>
        let t = transpose(&a);
        assert_eq!(t.dims(), (3, 2, 2));
        assert_eq!(t.rank(), 11);
        // Transpose is an involution on dims.
        assert_eq!(transpose(&t).dims(), (2, 2, 3));
    }

    #[test]
    fn to_dims_finds_every_permutation_of_234() {
        let base = stack_n(&classical(2, 3, 2), &classical(2, 3, 2)); // <2,3,4>
        for target in [(2, 3, 4), (2, 4, 3), (3, 2, 4), (3, 4, 2), (4, 2, 3), (4, 3, 2)] {
            let found =
                to_dims(&base, target).unwrap_or_else(|| panic!("no orientation for {target:?}"));
            assert_eq!(found.dims(), target);
            assert_eq!(found.rank(), base.rank());
        }
        assert!(to_dims(&base, (5, 2, 2)).is_none());
    }

    #[test]
    fn orientations_of_strassen_are_all_2x2x2_rank_7() {
        for o in all_orientations(&strassen()) {
            assert_eq!(o.dims(), (2, 2, 2));
            assert_eq!(o.rank(), 7);
        }
    }
}
