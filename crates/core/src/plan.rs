//! Multi-level execution plans.
//!
//! An [`FmmPlan`] is an ordered list of one-level algorithms — possibly a
//! *different* algorithm per level (the "hybrid partitions" of paper §5.2) —
//! together with the composed Kronecker coefficients
//! `[[⊗U_l, ⊗V_l, ⊗W_l]]` (paper eq. (5)) and the block grids for each
//! operand. Composition happens once at plan construction; executors then
//! iterate the `R_L = ∏R_l` products of the flattened representation.

use crate::algorithm::FmmAlgorithm;
use crate::coeffs::CoeffMatrix;
use crate::indexing::BlockGrid;
use std::sync::{Arc, OnceLock};

/// An L-level FMM plan with composed coefficients.
#[derive(Clone, Debug)]
pub struct FmmPlan {
    levels: Vec<Arc<FmmAlgorithm>>,
    u: CoeffMatrix,
    v: CoeffMatrix,
    w: CoeffMatrix,
    mt: usize,
    kt: usize,
    nt: usize,
    a_grid: BlockGrid,
    b_grid: BlockGrid,
    c_grid: BlockGrid,
    /// Lazily-composed plan over levels `1..L` (the hybrid scheduler's
    /// DFS-within-task plan); composed at most once per plan instance.
    inner: OnceLock<Option<Arc<FmmPlan>>>,
}

impl FmmPlan {
    /// Compose a plan from per-level algorithms (outermost first).
    /// Panics if `levels` is empty.
    pub fn new(levels: Vec<FmmAlgorithm>) -> Self {
        Self::from_arcs(levels.into_iter().map(Arc::new).collect())
    }

    /// As [`FmmPlan::new`] from shared handles.
    pub fn from_arcs(levels: Vec<Arc<FmmAlgorithm>>) -> Self {
        assert!(!levels.is_empty(), "a plan needs at least one level");
        let mut u = CoeffMatrix::kron_identity();
        let mut v = CoeffMatrix::kron_identity();
        let mut w = CoeffMatrix::kron_identity();
        let mut mt = 1;
        let mut kt = 1;
        let mut nt = 1;
        let mut a_levels = Vec::with_capacity(levels.len());
        let mut b_levels = Vec::with_capacity(levels.len());
        let mut c_levels = Vec::with_capacity(levels.len());
        for algo in &levels {
            let (m, k, n) = algo.dims();
            u = u.kron(algo.u());
            v = v.kron(algo.v());
            w = w.kron(algo.w());
            mt *= m;
            kt *= k;
            nt *= n;
            a_levels.push((m, k));
            b_levels.push((k, n));
            c_levels.push((m, n));
        }
        Self {
            levels,
            u,
            v,
            w,
            mt,
            kt,
            nt,
            a_grid: BlockGrid::new(a_levels),
            b_grid: BlockGrid::new(b_levels),
            c_grid: BlockGrid::new(c_levels),
            inner: OnceLock::new(),
        }
    }

    /// Convenience: `level` applied `l` times (homogeneous multi-level).
    pub fn uniform(level: FmmAlgorithm, l: usize) -> Self {
        assert!(l >= 1, "at least one level");
        let arc = Arc::new(level);
        Self::from_arcs(vec![arc; l])
    }

    /// The per-level algorithms, outermost first.
    pub fn levels(&self) -> &[Arc<FmmAlgorithm>] {
        &self.levels
    }

    /// Number of levels `L`.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The outermost level's algorithm (level 1 in the paper's numbering) —
    /// what a BFS-at-level-1 scheduler fans its tasks out over.
    pub fn first_level(&self) -> &Arc<FmmAlgorithm> {
        &self.levels[0]
    }

    /// The plan over levels `2..L`, i.e. what each level-1 task executes
    /// depth-first, or `None` for a one-level plan. Composed lazily, at
    /// most once per plan instance, so schedulers hitting a cached plan
    /// never recompose Kronecker coefficients.
    pub fn inner_plan(&self) -> Option<&Arc<FmmPlan>> {
        self.inner
            .get_or_init(|| {
                (self.levels.len() > 1)
                    .then(|| Arc::new(FmmPlan::from_arcs(self.levels[1..].to_vec())))
            })
            .as_ref()
    }

    /// Aggregate partition dims `(∏m̃_l, ∏k̃_l, ∏ñ_l)` — the divisibility
    /// the core problem must satisfy (paper: `M̃_L, K̃_L, Ñ_L`).
    pub fn partition_dims(&self) -> (usize, usize, usize) {
        (self.mt, self.kt, self.nt)
    }

    /// Total number of sub-multiplications `R_L = ∏R_l`.
    pub fn rank(&self) -> usize {
        self.u.cols()
    }

    /// Composed `⊗U` (rows: flat A-block indices; cols: products).
    pub fn u(&self) -> &CoeffMatrix {
        &self.u
    }

    /// Composed `⊗V`.
    pub fn v(&self) -> &CoeffMatrix {
        &self.v
    }

    /// Composed `⊗W`.
    pub fn w(&self) -> &CoeffMatrix {
        &self.w
    }

    /// Recursive block grid of `A` (`∏m̃_l x ∏k̃_l`).
    pub fn a_grid(&self) -> &BlockGrid {
        &self.a_grid
    }

    /// Recursive block grid of `B`.
    pub fn b_grid(&self) -> &BlockGrid {
        &self.b_grid
    }

    /// Recursive block grid of `C`.
    pub fn c_grid(&self) -> &BlockGrid {
        &self.c_grid
    }

    /// Human-readable partition description, e.g. `"<2,2,2>+<3,3,3>"`.
    pub fn describe(&self) -> String {
        self.levels
            .iter()
            .map(|a| {
                let (m, k, n) = a.dims();
                format!("<{m},{k},{n}>")
            })
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Multiplication count ratio vs. classical at the block level:
    /// `∏(m̃k̃ñ) / R_L` (the L-level theoretical speedup).
    pub fn speedup(&self) -> f64 {
        let classical: usize = self.levels.iter().map(|a| a.classical_rank()).product();
        classical as f64 / self.rank() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{strassen, winograd};

    #[test]
    fn one_level_plan_passes_through() {
        let p = FmmPlan::new(vec![strassen()]);
        assert_eq!(p.partition_dims(), (2, 2, 2));
        assert_eq!(p.rank(), 7);
        assert_eq!(p.u(), strassen().u());
        assert_eq!(p.describe(), "<2,2,2>");
    }

    #[test]
    fn two_level_strassen_is_kron_squared() {
        let s = strassen();
        let p = FmmPlan::uniform(s.clone(), 2);
        assert_eq!(p.partition_dims(), (4, 4, 4));
        assert_eq!(p.rank(), 49);
        assert_eq!(p.u(), &s.u().kron(s.u()));
        assert_eq!(p.w(), &s.w().kron(s.w()));
        assert!((p.speedup() - 64.0 / 49.0).abs() < 1e-15);
    }

    #[test]
    fn hybrid_levels_compose_dims() {
        let s = strassen();
        let w = winograd();
        let c223 = crate::compose::stack_n(&s, &crate::compose::classical(2, 2, 1));
        let p = FmmPlan::new(vec![s, c223, w]);
        assert_eq!(p.partition_dims(), (2 * 2 * 2, 2 * 2 * 2, 2 * 3 * 2));
        assert_eq!(p.rank(), 7 * 11 * 7);
        assert_eq!(p.num_levels(), 3);
        assert_eq!(p.describe(), "<2,2,2>+<2,2,3>+<2,2,2>");
    }

    #[test]
    fn grids_match_partition_dims() {
        let s = strassen();
        let c223 = crate::compose::stack_n(&s, &crate::compose::classical(2, 2, 1));
        let p = FmmPlan::new(vec![c223, s]);
        assert_eq!(p.a_grid().rows(), 4);
        assert_eq!(p.a_grid().cols(), 4);
        assert_eq!(p.b_grid().rows(), 4);
        assert_eq!(p.b_grid().cols(), 6);
        assert_eq!(p.c_grid().rows(), 4);
        assert_eq!(p.c_grid().cols(), 6);
        assert_eq!(p.a_grid().len(), p.u().rows());
        assert_eq!(p.b_grid().len(), p.v().rows());
        assert_eq!(p.c_grid().len(), p.w().rows());
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_plan_panics() {
        let _ = FmmPlan::new(vec![]);
    }

    #[test]
    fn inner_plan_splits_off_the_first_level() {
        let s = strassen();
        let w = winograd();
        let p = FmmPlan::new(vec![s.clone(), w.clone()]);
        assert_eq!(p.first_level().dims(), (2, 2, 2));
        let inner = p.inner_plan().expect("two levels have an inner plan");
        assert_eq!(inner.num_levels(), 1);
        assert_eq!(inner.u(), w.u());
        // Composed once, cached: both calls return the same Arc.
        assert!(Arc::ptr_eq(inner, p.inner_plan().unwrap()));
        assert!(FmmPlan::new(vec![s]).inner_plan().is_none());
    }
}
