//! Minimal JSON support for the registry serialization format.
//!
//! The build environment has no crates.io access, so instead of `serde` the
//! registry format is read and written by this small hand-rolled module. It
//! supports exactly what the format needs — objects, arrays, numbers, and
//! strings — and keeps two properties the algorithm tests rely on:
//!
//! * numbers that are mathematically integers are written with a trailing
//!   `.0` (`1.0`, `-2.0`), so coefficient edits in fixture files stay
//!   greppable;
//! * parsing is strict: trailing garbage, malformed literals, and missing
//!   keys are errors, never silently defaulted.
//!
//! Every consumer feeds this parser files and frames it did not write, so
//! the whole module carries the machine-checked panic-freedom contract
//! (`fmm-check`'s `deny-panic` rule — no `unwrap`/`expect`/`panic!`/`[]`
//! indexing outside tests; see README § Static analysis).

// fmm-check: contract(panic-free)

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (subset: no booleans/null — the registry format does
/// not use them). Numbers written without a fractional part parse as
/// [`Value::Int`], everything else as [`Value::Number`]; the distinction
/// keeps structural fields (`rows`, `mt`, …) free of `.0` suffixes while
/// coefficient data always carries one.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Int(i64),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a finite number.
    pub fn as_number(&self) -> Result<f64, String> {
        match self {
            Value::Number(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// The value as a non-negative integer.
    pub fn as_usize(&self) -> Result<usize, String> {
        let x = self.as_number()?;
        if x >= 0.0 && x.fract() == 0.0 && x < 2.0_f64.powi(53) {
            Ok(x as usize)
        } else {
            Err(format!("expected unsigned integer, got {x}"))
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Result<&[Value], String> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Result<&Value, String> {
        match self {
            Value::Object(map) => map.get(key).ok_or_else(|| format!("missing key {key:?}")),
            other => Err(format!("expected object, got {other:?}")),
        }
    }
}

/// Render `x` so integer-valued floats keep a `.0` suffix.
pub fn format_f64(x: f64) -> String {
    if x.is_finite() && x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// Serialize with two-space indentation (the registry fixture style).
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Number(x) => {
            let _ = write!(out, "{}", format_f64(*x));
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            // Flat number arrays (coefficient data) stay on one line.
            if items.iter().all(|i| matches!(i, Value::Number(_) | Value::Int(_))) {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_value(out, item, 0);
                }
                out.push(']');
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_value(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                write_string(out, k);
                out.push_str(": ");
                write_value(out, item, indent + 1);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container (object/array) nesting depth [`parse`] accepts.
///
/// The parser recurses per nesting level, so without a limit a small
/// hostile document (`[[[[…`) overflows the stack. Every consumer of this
/// module parses files it did not write — registry fixtures, the tune
/// store, `fmm_serve` CLI inputs — so depth is bounded here, once, and
/// exceeding it degrades to `Err` like any other malformed input. The
/// registry format nests a handful of levels; 64 is far above any
/// legitimate document and far below stack exhaustion.
pub const MAX_DEPTH: usize = 64;

/// Parse a complete JSON document.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting depth, checked against [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Result<u8, String> {
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek()? as char
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected character {:?} at byte {}", other as char, self.pos)),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!("nesting depth exceeds {MAX_DEPTH} at byte {}", self.pos));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_byte(b'{')?;
        self.enter()?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek()? {
                b',' => {
                    self.pos += 1;
                }
                b'}' => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(format!("expected ',' or '}}', found {:?}", other as char));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_byte(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => {
                    self.pos += 1;
                }
                b']' => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(format!("expected ',' or ']', found {:?}", other as char));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek()?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek()?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                            );
                        }
                        other => {
                            return Err(format!("unknown escape \\{}", other as char));
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte stream.
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".into());
                    }
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek()? == b'-' {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        // The scanned range is ASCII by construction; the empty fallback
        // degrades to the `invalid number` error below.
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .unwrap_or_default();
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        let x: f64 = text.parse().map_err(|_| format!("invalid number {text:?}"))?;
        if !x.is_finite() {
            return Err(format!("non-finite number {text:?}"));
        }
        Ok(Value::Number(x))
    }
}

fn utf8_len(first: u8) -> Result<usize, String> {
    match first {
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err("invalid UTF-8 leading byte".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Value::Object(BTreeMap::from([
            ("name".to_string(), Value::String("strassen <2,2,2>".to_string())),
            ("rank".to_string(), Value::Number(7.0)),
            (
                "data".to_string(),
                Value::Array(vec![Value::Number(1.0), Value::Number(-0.5), Value::Number(0.0)]),
            ),
        ]));
        let text = to_string_pretty(&doc);
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_serialize_with_decimal_point() {
        assert_eq!(format_f64(1.0), "1.0");
        assert_eq!(format_f64(-2.0), "-2.0");
        assert_eq!(format_f64(0.5), "0.5");
        assert_eq!(format_f64(0.0), "0.0");
    }

    #[test]
    fn parse_rejects_trailing_garbage_and_truncation() {
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndAé");
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting_without_overflow() {
        // Just inside the limit: parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        // One past the limit: a clean Err, not a stack overflow.
        let over = format!("{}1{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        let err = parse(&over).unwrap_err();
        assert!(err.contains("nesting depth"), "{err}");
        // A hostile unterminated prefix far past any plausible stack
        // budget must also degrade to Err.
        for open in ["[", "{\"k\":", "[[{\"a\":["] {
            let hostile = open.repeat(100_000);
            assert!(parse(&hostile).is_err());
        }
        // Depth counts the *stack*, not the total container count: wide
        // shallow documents stay parseable.
        let wide = format!("[{}1]", "[1],".repeat(10_000));
        assert!(parse(&wide).is_ok());
        // Sibling containers release their depth budget.
        let siblings = format!(
            "[{a},{a}]",
            a = format!("{}1{}", "[".repeat(MAX_DEPTH - 1), "]".repeat(MAX_DEPTH - 1))
        );
        assert!(parse(&siblings).is_ok());
    }

    /// Fuzz-style determinism sweep: parsing truncated and byte-mutated
    /// documents must always return (Ok or Err), never panic or overflow —
    /// the tune store and the serve CLI both feed this parser files and
    /// frames they did not write.
    #[test]
    fn truncated_and_garbage_inputs_degrade_to_err() {
        let seed_doc = concat!(
            "{\"name\": \"strassen <2,2,2>\", \"rank\": 7.0, ",
            "\"u\": [[1.0, -0.5], [0.0, 2.0e3]], ",
            "\"meta\": {\"esc\": \"a\\\"b\\\\c\\u00e9\\n\", \"deep\": [[[[1]]]]}}"
        );
        assert!(parse(seed_doc).is_ok());

        // Every prefix: truncation at any byte is an error or (for the
        // full document) a success — never a panic.
        for cut in 0..seed_doc.len() {
            if !seed_doc.is_char_boundary(cut) {
                continue;
            }
            let _ = parse(&seed_doc[..cut]);
        }

        // Deterministic xorshift byte mutations (single- and double-byte),
        // parsed as lossy UTF-8. No mutation may panic.
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let bytes = seed_doc.as_bytes();
        for _ in 0..2_000 {
            let mut mutated = bytes.to_vec();
            let flips = 1 + (next() as usize % 2);
            for _ in 0..flips {
                let pos = next() as usize % mutated.len();
                mutated[pos] = (next() & 0xFF) as u8;
            }
            let text = String::from_utf8_lossy(&mutated);
            let _ = parse(&text);
        }
    }

    #[test]
    fn accessors_report_type_mismatches() {
        let v = parse("[1.5]").unwrap();
        assert!(v.get("x").is_err());
        assert!(v.as_str().is_err());
        assert!(v.as_array().unwrap()[0].as_usize().is_err());
        assert_eq!(v.as_array().unwrap()[0].as_number().unwrap(), 1.5);
    }
}
