//! Exact verification of `[[U, V, W]]` triples against the Brent equations.
//!
//! A triple is a valid `<m̃, k̃, ñ>` algorithm iff for all index pairs
//! `(i, κ)`, `(κ', j)`, `(i', j')`:
//!
//! ```text
//! sum_r U[i·k̃+κ, r] · V[κ'·ñ+j, r] · W[i'·ñ+j', r]
//!     = δ(κ = κ') · δ(i = i') · δ(j = j')
//! ```
//!
//! Since registry coefficients are dyadic rationals of bounded size (see
//! [`crate::coeffs`]), each triple product and each `R`-term sum is computed
//! exactly in `f64`, so the equality test below is exact, not approximate.

use crate::algorithm::FmmAlgorithm;

/// A violated Brent equation.
#[derive(Debug, Clone, PartialEq)]
pub struct BrentViolation {
    /// `(i, κ)` index into `U`'s grid.
    pub a_idx: (usize, usize),
    /// `(κ', j)` index into `V`'s grid.
    pub b_idx: (usize, usize),
    /// `(i', j')` index into `W`'s grid.
    pub c_idx: (usize, usize),
    /// The computed sum.
    pub got: f64,
    /// The Kronecker-delta target (0.0 or 1.0).
    pub expected: f64,
}

impl std::fmt::Display for BrentViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Brent equation violated at A{:?} B{:?} C{:?}: got {}, expected {}",
            self.a_idx, self.b_idx, self.c_idx, self.got, self.expected
        )
    }
}

/// Verify all `(m̃k̃)·(k̃ñ)·(m̃ñ)` Brent equations; returns the first
/// violation found.
pub fn verify(algo: &FmmAlgorithm) -> Result<(), BrentViolation> {
    match first_violation(algo, 0.0) {
        None => Ok(()),
        Some(v) => Err(v),
    }
}

/// Count violated equations at tolerance `tol` (0.0 means exact). Used by
/// the search crate's repair loop as a discrete objective.
pub fn count_violations(algo: &FmmAlgorithm, tol: f64) -> usize {
    let mut count = 0;
    for_each_equation(algo, |_, _, _, got, expected| {
        if (got - expected).abs() > tol {
            count += 1;
        }
        true
    });
    count
}

/// Sum of squared residuals over all Brent equations — the continuous
/// objective ALS minimizes.
pub fn residual_sq(algo: &FmmAlgorithm) -> f64 {
    let mut acc = 0.0;
    for_each_equation(algo, |_, _, _, got, expected| {
        let d = got - expected;
        acc += d * d;
        true
    });
    acc
}

fn first_violation(algo: &FmmAlgorithm, tol: f64) -> Option<BrentViolation> {
    let mut found = None;
    for_each_equation(algo, |a_idx, b_idx, c_idx, got, expected| {
        if (got - expected).abs() > tol {
            found = Some(BrentViolation { a_idx, b_idx, c_idx, got, expected });
            false
        } else {
            true
        }
    });
    found
}

/// Drive `f` over every Brent equation; `f` returns `false` to stop early.
#[allow(clippy::type_complexity)]
fn for_each_equation(
    algo: &FmmAlgorithm,
    mut f: impl FnMut((usize, usize), (usize, usize), (usize, usize), f64, f64) -> bool,
) {
    let (mt, kt, nt) = algo.dims();
    let r_count = algo.rank();
    let (u, v, w) = (algo.u(), algo.v(), algo.w());
    for i in 0..mt {
        for ka in 0..kt {
            let urow = i * kt + ka;
            for kb in 0..kt {
                for j in 0..nt {
                    let vrow = kb * nt + j;
                    // Precompute the U·V partial products for this pair.
                    let mut uv = vec![0.0; r_count];
                    let mut any = false;
                    for (slot, r) in uv.iter_mut().zip(0..r_count) {
                        let p = u.at(urow, r) * v.at(vrow, r);
                        *slot = p;
                        any |= p != 0.0;
                    }
                    for ic in 0..mt {
                        for jc in 0..nt {
                            let wrow = ic * nt + jc;
                            let expected = if ka == kb && i == ic && j == jc { 1.0 } else { 0.0 };
                            if !any {
                                if expected != 0.0 && !f((i, ka), (kb, j), (ic, jc), 0.0, expected)
                                {
                                    return;
                                }
                                continue;
                            }
                            let mut got = 0.0;
                            for (r, &p) in uv.iter().enumerate() {
                                if p != 0.0 {
                                    got += p * w.at(wrow, r);
                                }
                            }
                            if !f((i, ka), (kb, j), (ic, jc), got, expected) {
                                return;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coeffs::CoeffMatrix;

    /// Hand-rolled classical <2,1,1>: C0 = A0 B0, C1 = A1 B0.
    fn classical_211() -> FmmAlgorithm {
        FmmAlgorithm::new_unchecked(
            "c211",
            (2, 1, 1),
            CoeffMatrix::from_rows(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
            CoeffMatrix::from_rows(1, 2, vec![1.0, 1.0]),
            CoeffMatrix::from_rows(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
        )
    }

    #[test]
    fn classical_211_passes() {
        assert!(verify(&classical_211()).is_ok());
        assert_eq!(count_violations(&classical_211(), 0.0), 0);
        assert_eq!(residual_sq(&classical_211()), 0.0);
    }

    #[test]
    fn single_sign_flip_is_caught() {
        let good = classical_211();
        let mut w = good.w().clone();
        w.set(1, 1, -1.0);
        let bad =
            FmmAlgorithm::new_unchecked("bad", (2, 1, 1), good.u().clone(), good.v().clone(), w);
        let viol = verify(&bad).unwrap_err();
        assert_eq!(viol.expected, 1.0);
        assert_eq!(viol.got, -1.0);
        assert_eq!(count_violations(&bad, 0.0), 1);
        assert!(residual_sq(&bad) > 3.9);
    }

    #[test]
    fn zero_algorithm_violates_diagonal_equations_only() {
        let zero = FmmAlgorithm::new_unchecked(
            "zero",
            (2, 1, 1),
            CoeffMatrix::zeros(2, 1),
            CoeffMatrix::zeros(1, 1),
            CoeffMatrix::zeros(2, 1),
        );
        // Diagonal equations: (i, κ=0), (κ'=0, j=0), (i'=i, j'=0): 2 of them.
        assert_eq!(count_violations(&zero, 0.0), 2);
    }

    #[test]
    fn tolerance_loosens_counting() {
        let good = classical_211();
        let mut u = good.u().clone();
        u.set(0, 0, 1.0 + 2.0_f64.powi(-12)); // tiny dyadic perturbation
        let bad =
            FmmAlgorithm::new_unchecked("b", (2, 1, 1), u, good.v().clone(), good.w().clone());
        assert!(count_violations(&bad, 0.0) > 0);
        assert_eq!(count_violations(&bad, 1e-3), 0);
    }
}
