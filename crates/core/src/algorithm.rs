//! The `[[U, V, W]]` algorithm type.

use crate::brent;
use crate::coeffs::CoeffMatrix;
use crate::json;
use std::sync::Arc;

/// A one-level `<m̃, k̃, ñ>` fast matrix multiplication algorithm (paper
/// §3.1): `C := C + A·B` over an `m̃ x k̃` partition of `A`, `k̃ x ñ` of
/// `B`, and `m̃ x ñ` of `C`, computed with `R = rank()` sub-multiplications
///
/// ```text
/// M_r = (sum_i U[i,r]·A_i) · (sum_j V[j,r]·B_j),   C_p += W[p,r]·M_r
/// ```
///
/// where submatrices are indexed row-major within their grid.
///
/// Construction verifies the Brent equations, so any `FmmAlgorithm` value
/// is a *proven-correct* bilinear algorithm.
#[derive(Clone, Debug)]
pub struct FmmAlgorithm {
    name: String,
    mt: usize,
    kt: usize,
    nt: usize,
    u: CoeffMatrix,
    v: CoeffMatrix,
    w: CoeffMatrix,
}

impl FmmAlgorithm {
    /// Build and verify an algorithm. Returns an error describing the first
    /// violated Brent equation if the triple is not a valid `<m̃,k̃,ñ>`
    /// algorithm.
    pub fn new(
        name: impl Into<String>,
        (mt, kt, nt): (usize, usize, usize),
        u: CoeffMatrix,
        v: CoeffMatrix,
        w: CoeffMatrix,
    ) -> Result<Self, String> {
        assert!(mt >= 1 && kt >= 1 && nt >= 1, "partition dimensions must be positive");
        if u.rows() != mt * kt {
            return Err(format!("U must have m̃·k̃ = {} rows, got {}", mt * kt, u.rows()));
        }
        if v.rows() != kt * nt {
            return Err(format!("V must have k̃·ñ = {} rows, got {}", kt * nt, v.rows()));
        }
        if w.rows() != mt * nt {
            return Err(format!("W must have m̃·ñ = {} rows, got {}", mt * nt, w.rows()));
        }
        let r = u.cols();
        if v.cols() != r || w.cols() != r {
            return Err(format!(
                "U, V, W must share a column count: got {}, {}, {}",
                r,
                v.cols(),
                w.cols()
            ));
        }
        let algo = Self { name: name.into(), mt, kt, nt, u, v, w };
        brent::verify(&algo).map_err(|e| e.to_string())?;
        Ok(algo)
    }

    /// Build without verification — for search intermediates only.
    pub fn new_unchecked(
        name: impl Into<String>,
        (mt, kt, nt): (usize, usize, usize),
        u: CoeffMatrix,
        v: CoeffMatrix,
        w: CoeffMatrix,
    ) -> Self {
        Self { name: name.into(), mt, kt, nt, u, v, w }
    }

    /// Algorithm name, e.g. `"strassen"` or `"<2,3,2>"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Partition dimensions `(m̃, k̃, ñ)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.mt, self.kt, self.nt)
    }

    /// Number of sub-multiplications `R`.
    pub fn rank(&self) -> usize {
        self.u.cols()
    }

    /// Number of sub-multiplications classical multiplication would need
    /// (`m̃·k̃·ñ`).
    pub fn classical_rank(&self) -> usize {
        self.mt * self.kt * self.nt
    }

    /// Theoretical speedup per recursive step, `m̃k̃ñ / R` (Fig. 2's
    /// "Theory" column is `(m̃k̃ñ/R - 1) · 100%`).
    pub fn speedup_per_level(&self) -> f64 {
        self.classical_rank() as f64 / self.rank() as f64
    }

    /// The `U` coefficient matrix (`(m̃·k̃) x R`).
    pub fn u(&self) -> &CoeffMatrix {
        &self.u
    }

    /// The `V` coefficient matrix (`(k̃·ñ) x R`).
    pub fn v(&self) -> &CoeffMatrix {
        &self.v
    }

    /// The `W` coefficient matrix (`(m̃·ñ) x R`).
    pub fn w(&self) -> &CoeffMatrix {
        &self.w
    }

    /// Rename (used when registering derived algorithms).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Shared-ownership handle, the form plans hold.
    pub fn into_arc(self) -> Arc<FmmAlgorithm> {
        Arc::new(self)
    }

    /// Serialize to the registry JSON format.
    pub fn to_json(&self) -> String {
        let doc = json::Value::Object(std::collections::BTreeMap::from([
            ("name".to_string(), json::Value::String(self.name.clone())),
            ("mt".to_string(), json::Value::Int(self.mt as i64)),
            ("kt".to_string(), json::Value::Int(self.kt as i64)),
            ("nt".to_string(), json::Value::Int(self.nt as i64)),
            ("u".to_string(), self.u.to_json_value()),
            ("v".to_string(), self.v.to_json_value()),
            ("w".to_string(), self.w.to_json_value()),
        ]));
        json::to_string_pretty(&doc)
    }

    /// Deserialize from the registry JSON format and re-verify.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let name = doc.get("name")?.as_str()?.to_string();
        let dims =
            (doc.get("mt")?.as_usize()?, doc.get("kt")?.as_usize()?, doc.get("nt")?.as_usize()?);
        let u = CoeffMatrix::from_json_value(doc.get("u")?)?;
        let v = CoeffMatrix::from_json_value(doc.get("v")?)?;
        let w = CoeffMatrix::from_json_value(doc.get("w")?)?;
        // Round-trip through the checked constructor: deserialized data is
        // untrusted.
        FmmAlgorithm::new(name, dims, u, v, w)
    }
}

impl std::fmt::Display for FmmAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} <{},{},{}> R={}", self.name, self.mt, self.kt, self.nt, self.rank())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classical_1x1() -> FmmAlgorithm {
        FmmAlgorithm::new(
            "scalar",
            (1, 1, 1),
            CoeffMatrix::from_rows(1, 1, vec![1.0]),
            CoeffMatrix::from_rows(1, 1, vec![1.0]),
            CoeffMatrix::from_rows(1, 1, vec![1.0]),
        )
        .unwrap()
    }

    #[test]
    fn scalar_algorithm_is_valid() {
        let a = classical_1x1();
        assert_eq!(a.rank(), 1);
        assert_eq!(a.classical_rank(), 1);
        assert_eq!(a.speedup_per_level(), 1.0);
    }

    #[test]
    fn wrong_shape_is_rejected() {
        let err = FmmAlgorithm::new(
            "bad",
            (2, 2, 2),
            CoeffMatrix::zeros(3, 7), // should be 4 x 7
            CoeffMatrix::zeros(4, 7),
            CoeffMatrix::zeros(4, 7),
        )
        .unwrap_err();
        assert!(err.contains("U must have"));
    }

    #[test]
    fn mismatched_rank_is_rejected() {
        let err = FmmAlgorithm::new(
            "bad",
            (1, 1, 1),
            CoeffMatrix::zeros(1, 2),
            CoeffMatrix::zeros(1, 3),
            CoeffMatrix::zeros(1, 2),
        )
        .unwrap_err();
        assert!(err.contains("column count"));
    }

    #[test]
    fn invalid_coefficients_fail_brent() {
        // "Algorithm" claiming C = 2·A·B for scalars: violates Brent.
        let err = FmmAlgorithm::new(
            "bad",
            (1, 1, 1),
            CoeffMatrix::from_rows(1, 1, vec![1.0]),
            CoeffMatrix::from_rows(1, 1, vec![1.0]),
            CoeffMatrix::from_rows(1, 1, vec![2.0]),
        )
        .unwrap_err();
        assert!(err.contains("Brent"), "{err}");
    }

    #[test]
    fn json_roundtrip_preserves_and_reverifies() {
        let a = classical_1x1();
        let json = a.to_json();
        let b = FmmAlgorithm::from_json(&json).unwrap();
        assert_eq!(b.dims(), a.dims());
        assert_eq!(b.rank(), a.rank());
    }

    #[test]
    fn corrupted_json_fails_verification() {
        let a = classical_1x1();
        let json = a.to_json().replace("1.0", "2.0");
        assert!(FmmAlgorithm::from_json(&json).is_err());
    }

    #[test]
    fn display_mentions_dims_and_rank() {
        let s = classical_1x1().to_string();
        assert!(s.contains("<1,1,1>"));
        assert!(s.contains("R=1"));
    }
}
