//! Shared executor machinery: operand block grids and destination grids.
//! (Scratch temporaries live in the preplanned [`super::WorkspaceArena`].)
//!
//! This file carries `fmm-check`'s `contract(warm-alloc-free)` (see README
//! § Static analysis). The grid/term collections below are the only
//! remaining warm-path allocations; each is explicitly allowed with its
//! justification so any new one must argue its case in review.

// fmm-check: contract(warm-alloc-free)

use crate::indexing::BlockGrid;
use fmm_dense::{MatMut, MatRef, Scalar};

/// The immutable operand blocks of one FMM core execution, indexed by the
/// recursive-block flat index the composed coefficients use.
pub struct OperandBlocks<'a, T = f64> {
    blocks: Vec<MatRef<'a, T>>,
}

impl<'a, T: Scalar> OperandBlocks<'a, T> {
    /// Slice `op` into its `grid` of `(block_rows x block_cols)` views.
    pub fn new(op: MatRef<'a, T>, grid: &BlockGrid) -> Self {
        assert_eq!(op.rows() % grid.rows(), 0, "operand rows not divisible by grid");
        assert_eq!(op.cols() % grid.cols(), 0, "operand cols not divisible by grid");
        let bm = op.rows() / grid.rows();
        let bn = op.cols() / grid.cols();
        let blocks = (0..grid.len())
            .map(|flat| {
                let (r, c) = grid.coords(flat);
                op.submatrix(r * bm, c * bn, bm, bn)
            })
            // fmm-check: allow(deny-alloc, reason = "per-execution grid setup, plan-rank bounded, not per-product")
            .collect();
        Self { blocks }
    }

    /// Block view for flat index `i`.
    pub fn get(&self, i: usize) -> MatRef<'a, T> {
        self.blocks[i]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if there are no blocks (never for a valid plan).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// The mutable destination grid over `C`.
///
/// Holds raw parts of the parent view so that several disjoint block views
/// can be alive at once (one FMM product updates multiple `C_p`).
pub struct DestBlocks<'a, T = f64> {
    ptr: *mut T,
    rs: isize,
    cs: isize,
    bm: usize,
    bn: usize,
    coords: Vec<(usize, usize)>,
    _marker: std::marker::PhantomData<&'a mut T>,
}

// SAFETY: the only way to reach the underlying elements is
// [`DestBlocks::get`], an `unsafe fn` whose contract requires distinct
// (hence disjoint) block indices; sharing the descriptor across threads —
// which the BFS merge phase does, one block per task — adds no capability
// beyond that contract.
unsafe impl<T: Scalar> Send for DestBlocks<'_, T> {}
unsafe impl<T: Scalar> Sync for DestBlocks<'_, T> {}

impl<'a, T: Scalar> DestBlocks<'a, T> {
    /// Slice `c` into its `grid` of blocks.
    pub fn new(mut c: MatMut<'a, T>, grid: &BlockGrid) -> Self {
        assert_eq!(c.rows() % grid.rows(), 0, "C rows not divisible by grid");
        assert_eq!(c.cols() % grid.cols(), 0, "C cols not divisible by grid");
        let bm = c.rows() / grid.rows();
        let bn = c.cols() / grid.cols();
        // fmm-check: allow(deny-alloc, reason = "per-execution grid setup, plan-rank bounded, not per-product")
        let coords = (0..grid.len()).map(|flat| grid.coords(flat)).collect();
        Self {
            ptr: c.as_mut_ptr(),
            rs: c.row_stride(),
            cs: c.col_stride(),
            bm,
            bn,
            coords,
            _marker: std::marker::PhantomData,
        }
    }

    /// Block shape `(rows, cols)`.
    pub fn block_shape(&self) -> (usize, usize) {
        (self.bm, self.bn)
    }

    /// Mutable view of block `p`.
    ///
    /// # Safety
    /// Views for *distinct* `p` address disjoint elements, so several may be
    /// alive simultaneously; the caller must not obtain two views of the
    /// same `p` at once, nor use a view beyond the parent borrow.
    pub unsafe fn get(&self, p: usize) -> MatMut<'a, T> {
        let (r, c) = self.coords[p];
        // SAFETY: `coords[p]` is a grid coordinate inside the parent view,
        // so the offset and the `bm x bn` block stay in bounds; disjointness
        // across distinct `p` is the caller's contract.
        unsafe {
            let ptr = self
                .ptr
                .offset((r * self.bm) as isize * self.rs + (c * self.bn) as isize * self.cs);
            MatMut::from_raw_parts(ptr, self.bm, self.bn, self.rs, self.cs)
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True if there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }
}

/// Gather the non-zero operand terms of product `r` from a coefficient
/// matrix column: `[(coeff, block view), ...]`. Plan coefficients are
/// stored in `f64` and narrowed to the execution scalar here — the single
/// point where the coefficient domain meets the data domain.
pub fn gather_terms<'a, T: Scalar>(
    coeffs: &crate::coeffs::CoeffMatrix,
    r: usize,
    blocks: &OperandBlocks<'a, T>,
) -> Vec<(T, MatRef<'a, T>)> {
    // fmm-check: allow(deny-alloc, reason = "per-product term list bounded by plan nnz; fold into a fixed-capacity buffer if it shows in profiles")
    coeffs.col_nonzeros(r).map(|(i, g)| (T::from_f64(g), blocks.get(i))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FmmPlan;
    use crate::registry::strassen;
    use fmm_dense::fill;

    #[test]
    fn operand_blocks_match_manual_submatrices() {
        let plan = FmmPlan::new(vec![strassen()]);
        let a = fill::counter(6, 8);
        let blocks = OperandBlocks::new(a.as_ref(), plan.a_grid());
        assert_eq!(blocks.len(), 4);
        // Flat order row-major: A0 = top-left 3x4.
        assert_eq!(blocks.get(0).at(0, 0), a.get(0, 0));
        assert_eq!(blocks.get(1).at(0, 0), a.get(0, 4));
        assert_eq!(blocks.get(2).at(0, 0), a.get(3, 0));
        assert_eq!(blocks.get(3).at(2, 3), a.get(5, 7));
    }

    #[test]
    fn two_level_blocks_follow_morton_order() {
        let plan = FmmPlan::uniform(strassen(), 2);
        let a = fill::counter(8, 8);
        let blocks = OperandBlocks::new(a.as_ref(), plan.a_grid());
        assert_eq!(blocks.len(), 16);
        // Flat index 1 = outer block (0,0), inner block (0,1):
        // rows 0..2, cols 2..4.
        assert_eq!(blocks.get(1).at(0, 0), a.get(0, 2));
        // Flat index 4 = outer block (0,1), inner (0,0): rows 0..2, cols 4..6.
        assert_eq!(blocks.get(4).at(0, 0), a.get(0, 4));
    }

    #[test]
    fn dest_blocks_write_disjoint_regions() {
        let plan = FmmPlan::new(vec![strassen()]);
        let mut c = fmm_dense::Matrix::zeros(4, 4);
        {
            let dests = DestBlocks::new(c.as_mut(), plan.c_grid());
            assert_eq!(dests.block_shape(), (2, 2));
            // SAFETY: distinct indices -> disjoint views.
            let mut b0 = unsafe { dests.get(0) };
            // SAFETY: index 3 is disjoint from index 0.
            let mut b3 = unsafe { dests.get(3) };
            b0.fill(1.0);
            b3.fill(2.0);
        }
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(1, 1), 1.0);
        assert_eq!(c.get(2, 2), 2.0);
        assert_eq!(c.get(0, 2), 0.0);
        assert_eq!(c.get(2, 0), 0.0);
    }

    #[test]
    fn gather_terms_reads_u_column() {
        let s = strassen();
        let plan = FmmPlan::new(vec![s.clone()]);
        let a = fill::counter(4, 4);
        let blocks = OperandBlocks::new(a.as_ref(), plan.a_grid());
        // Product 1 of Strassen: A2 + A3.
        let terms = gather_terms(plan.u(), 1, &blocks);
        assert_eq!(terms.len(), 2);
        assert_eq!(terms[0].0, 1.0);
        assert_eq!(terms[0].1.at(0, 0), a.get(2, 0)); // A2 top-left
        assert_eq!(terms[1].1.at(0, 0), a.get(2, 2)); // A3 top-left
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_operand_panics() {
        let plan = FmmPlan::new(vec![strassen()]);
        let a = fill::counter(5, 4);
        let _ = OperandBlocks::new(a.as_ref(), plan.a_grid());
    }
}
