//! FMM executors: the Naive, AB, and ABC implementations (paper §4.1).
//!
//! All three variants iterate the `R_L` products of the composed plan
//! (paper eq. (5)); they differ in *where* the linear combinations happen:
//!
//! | variant | `ΣuᵢAᵢ`, `ΣvⱼBⱼ`        | `C_p += w·M_r`                   |
//! |---------|--------------------------|----------------------------------|
//! | Naive   | explicit temporaries     | explicit `M_r` buffer, then axpy |
//! | AB      | folded into packing      | explicit `M_r` buffer, then axpy |
//! | ABC     | folded into packing      | multi-destination micro-kernel   |
//!
//! Problem sizes that are not multiples of the aggregate partition dims are
//! handled by dynamic peeling ([`crate::peeling`]): an FMM core plus rim
//! GEMM calls.

mod ab;
mod abc;
mod arena;
mod common;
mod naive;

pub use arena::{ArenaLayout, ArenaViews, TaskSlots, WorkspaceArena};
pub use common::{gather_terms, DestBlocks, OperandBlocks};

use crate::peeling;
use crate::plan::FmmPlan;
use fmm_dense::{MatMut, MatRef};
use fmm_gemm::{BlockingParams, DestTile, GemmScalar, GemmWorkspace};

/// Which FMM implementation strategy to run (paper §4.1 "Further
/// variations").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Temporaries for operand sums and for `M_r`.
    Naive,
    /// Operand sums folded into packing; `M_r` still materialized.
    Ab,
    /// Operand sums in packing and `M_r` scattered straight into `C`.
    Abc,
}

impl Variant {
    /// All variants, in the paper's order.
    pub const ALL: [Variant; 3] = [Variant::Naive, Variant::Ab, Variant::Abc];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Naive => "Naive",
            Variant::Ab => "AB",
            Variant::Abc => "ABC",
        }
    }

    /// Extra workspace (in `f64` elements, beyond the GEMM packing buffers
    /// that plain GEMM needs too) this variant requires for an `(m, k, n)`
    /// core problem under `plan` — the paper's headline resource claim:
    ///
    /// * ABC: **zero** (linear combinations live in packing and the
    ///   micro-kernel epilogue);
    /// * AB: one `M_r` block (`m/M̃ · n/Ñ`);
    /// * Naive: `M_r` plus the two operand-sum blocks.
    pub fn workspace_elements(
        self,
        plan: &crate::plan::FmmPlan,
        m: usize,
        k: usize,
        n: usize,
    ) -> usize {
        let (mt, kt, nt) = plan.partition_dims();
        let (bm, bk, bn) = (m / mt, k / kt, n / nt);
        match self {
            Variant::Abc => 0,
            Variant::Ab => bm * bn,
            Variant::Naive => bm * bn + bm * bk + bk * bn,
        }
    }
}

/// Reusable state across FMM invocations: blocking parameters, packing
/// workspace, and the preplanned arena holding the temporaries the
/// Naive/AB variants need.
///
/// The arena is sized up-front (explicitly via [`FmmContext::preplan`], or
/// implicitly on the first execution of a shape) and only ever grows, so a
/// long-lived context performs no heap allocation for FMM temporaries once
/// warm — the property the engine's warm-path tests assert through
/// [`FmmContext::arena_grow_count`].
pub struct FmmContext<T = f64> {
    /// Blocking parameters passed to the underlying GEMM driver.
    pub params: BlockingParams,
    pub(crate) ws: GemmWorkspace<T>,
    pub(crate) arena: WorkspaceArena<T>,
    /// Layout of the most recent core execution (`None` before the first,
    /// or when the problem had an empty core).
    last_layout: Option<ArenaLayout>,
    /// Execute block products with the rayon-parallel driver.
    pub(crate) parallel: bool,
}

impl<T: GemmScalar> FmmContext<T> {
    /// Context with the default (paper §5.1) blocking parameters.
    pub fn with_defaults() -> Self {
        Self::new(BlockingParams::default())
    }

    /// Context with explicit blocking parameters. The packing workspace
    /// starts empty: the sequential driver sizes it on first use (the
    /// parallel driver draws per-worker buffers from the global pool
    /// instead, so parallel-only contexts never pay for it); call
    /// [`FmmContext::preplan`] to allocate everything up-front.
    pub fn new(params: BlockingParams) -> Self {
        Self {
            params,
            ws: GemmWorkspace::empty(),
            arena: WorkspaceArena::new(),
            last_layout: None,
            parallel: false,
        }
    }

    /// Size the arena and packing workspace for `(plan, variant)` on an
    /// `(m, k, n)` problem before executing it, so the execution itself
    /// allocates nothing. Idempotent; never shrinks.
    pub fn preplan(&mut self, plan: &FmmPlan, variant: Variant, m: usize, k: usize, n: usize) {
        let (mc, kc, nc) = peeling::peel(m, k, n, plan.partition_dims()).core;
        if mc > 0 && kc > 0 && nc > 0 {
            self.arena.preplan(&ArenaLayout::for_core(variant, plan, mc, kc, nc));
        }
        self.ws.ensure(&self.params.with_register_tile(T::MR, T::NR));
    }

    /// Arena elements occupied by the most recent core execution. Equals
    /// [`Variant::workspace_elements`] for that execution's parameters.
    pub fn fmm_workspace_elements(&self) -> usize {
        self.last_layout.as_ref().map_or(0, ArenaLayout::total_elements)
    }

    /// Layout of the most recent core execution, if any.
    pub fn last_layout(&self) -> Option<&ArenaLayout> {
        self.last_layout.as_ref()
    }

    /// How many times the arena has (re)allocated; flat once warm.
    pub fn arena_grow_count(&self) -> u64 {
        self.arena.grow_count()
    }
}

/// The GEMM half of a context, split out so executors can hold arena views
/// and dispatch block products simultaneously (disjoint borrows of
/// [`FmmContext`]).
pub(crate) struct GemmDispatch<'a, T = f64> {
    params: &'a BlockingParams,
    ws: &'a mut GemmWorkspace<T>,
    parallel: bool,
}

impl<T: GemmScalar> GemmDispatch<'_, T> {
    /// Dispatch one block product to the sequential or parallel driver.
    pub(crate) fn block_product(
        &mut self,
        dests: &mut [DestTile<'_, T>],
        a_terms: &[(T, MatRef<'_, T>)],
        b_terms: &[(T, MatRef<'_, T>)],
        overwrite: bool,
    ) {
        if self.parallel {
            if overwrite {
                fmm_gemm::parallel::gemm_sums_parallel_overwrite(
                    dests,
                    a_terms,
                    b_terms,
                    self.params,
                );
            } else {
                fmm_gemm::parallel::gemm_sums_parallel(dests, a_terms, b_terms, self.params);
            }
        } else if overwrite {
            fmm_gemm::driver::gemm_sums_overwrite(dests, a_terms, b_terms, self.params, self.ws);
        } else {
            fmm_gemm::driver::gemm_sums(dests, a_terms, b_terms, self.params, self.ws);
        }
    }
}

/// Execute `C += A · B` with the given plan and variant, sequentially.
///
/// Dimensions are arbitrary; fringes are handled by dynamic peeling.
pub fn fmm_execute<T: GemmScalar>(
    c: MatMut<'_, T>,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    plan: &FmmPlan,
    variant: Variant,
    ctx: &mut FmmContext<T>,
) {
    ctx.parallel = false;
    execute_impl(c, a, b, plan, variant, ctx)
}

/// As [`fmm_execute`], but each block product uses the rayon-parallel GEMM
/// driver (the paper's loop-3 data parallelism); the `R_L` products remain
/// sequential, exactly as in the paper's implementation.
pub fn fmm_execute_parallel<T: GemmScalar>(
    c: MatMut<'_, T>,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    plan: &FmmPlan,
    variant: Variant,
    ctx: &mut FmmContext<T>,
) {
    ctx.parallel = true;
    execute_impl(c, a, b, plan, variant, ctx)
}

fn execute_impl<T: GemmScalar>(
    mut c: MatMut<'_, T>,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    plan: &FmmPlan,
    variant: Variant,
    ctx: &mut FmmContext<T>,
) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "A/B inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "C shape mismatch");

    let peel_plan = peeling::peel(m, k, n, plan.partition_dims());
    let (mc, kc, nc) = peel_plan.core;

    // Reset before (maybe) running the core, so a reused context never
    // reports a previous execution's layout when this problem's core is
    // empty (everything handled by rim GEMMs).
    ctx.last_layout = None;
    if mc > 0 && kc > 0 && nc > 0 {
        let a_core = a.submatrix(0, 0, mc, kc);
        let b_core = b.submatrix(0, 0, kc, nc);
        let c_core = c.reborrow().submatrix(0, 0, mc, nc);
        run_core(c_core, a_core, b_core, plan, variant, ctx);
    }

    let FmmContext { params, ws, parallel, .. } = ctx;
    let mut gemm = GemmDispatch { params, ws, parallel: *parallel };
    for rim in &peel_plan.rims {
        let a_rim = a.submatrix(rim.rows.start, rim.inner.start, rim.rows.len(), rim.inner.len());
        let b_rim = b.submatrix(rim.inner.start, rim.cols.start, rim.inner.len(), rim.cols.len());
        let c_rim =
            c.reborrow().submatrix(rim.rows.start, rim.cols.start, rim.rows.len(), rim.cols.len());
        gemm.block_product(
            &mut [DestTile::new(c_rim, T::ONE)],
            &[(T::ONE, a_rim)],
            &[(T::ONE, b_rim)],
            false,
        );
    }
}

fn run_core<T: GemmScalar>(
    c: MatMut<'_, T>,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    plan: &FmmPlan,
    variant: Variant,
    ctx: &mut FmmContext<T>,
) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    let a_blocks = OperandBlocks::new(a, plan.a_grid());
    let b_blocks = OperandBlocks::new(b, plan.b_grid());
    let c_blocks = DestBlocks::new(c, plan.c_grid());
    let layout = ArenaLayout::for_core(variant, plan, m, k, n);
    ctx.last_layout = Some(layout);
    // Split the context into its disjoint halves: arena views for the
    // executor, params + packing workspace for the GEMM dispatch.
    let FmmContext { params, ws, arena, parallel, .. } = ctx;
    let views = arena.views(&layout);
    let mut gemm = GemmDispatch { params, ws, parallel: *parallel };
    match variant {
        Variant::Naive => naive::run(plan, &a_blocks, &b_blocks, &c_blocks, views, &mut gemm),
        Variant::Ab => ab::run(plan, &a_blocks, &b_blocks, &c_blocks, views, &mut gemm),
        Variant::Abc => abc::run(plan, &a_blocks, &b_blocks, &c_blocks, &mut gemm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::strassen;
    use fmm_dense::{fill, norms, Matrix};

    fn check(m: usize, k: usize, n: usize, plan: &FmmPlan, variant: Variant, parallel: bool) {
        let a = fill::bench_workload(m, k, 1);
        let b = fill::bench_workload(k, n, 2);
        let mut c = fill::bench_workload(m, n, 3);
        let c_orig = c.clone();
        let mut ctx = FmmContext::new(BlockingParams::tiny());
        if parallel {
            fmm_execute_parallel(c.as_mut(), a.as_ref(), b.as_ref(), plan, variant, &mut ctx);
        } else {
            fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), plan, variant, &mut ctx);
        }
        let mut c_ref = c_orig;
        fmm_gemm::reference::matmul_into(c_ref.as_mut(), a.as_ref(), b.as_ref());
        let err = norms::max_abs_diff(c.as_ref(), c_ref.as_ref());
        let tol = norms::fmm_tolerance(k, plan.num_levels());
        assert!(
            err < tol,
            "{} {} m={m} k={k} n={n} parallel={parallel}: err={err} tol={tol}",
            plan.describe(),
            variant.name()
        );
    }

    #[test]
    fn one_level_strassen_all_variants_divisible() {
        let plan = FmmPlan::new(vec![strassen()]);
        for v in Variant::ALL {
            check(16, 16, 16, &plan, v, false);
        }
    }

    #[test]
    fn one_level_strassen_with_fringes() {
        let plan = FmmPlan::new(vec![strassen()]);
        for v in Variant::ALL {
            check(17, 19, 21, &plan, v, false);
        }
    }

    #[test]
    fn two_level_strassen_all_variants() {
        let plan = FmmPlan::uniform(strassen(), 2);
        for v in Variant::ALL {
            check(36, 36, 36, &plan, v, false);
            check(37, 35, 33, &plan, v, false);
        }
    }

    #[test]
    fn problem_smaller_than_partition_falls_back_to_gemm() {
        let plan = FmmPlan::uniform(strassen(), 2); // needs multiples of 4
        for v in Variant::ALL {
            check(3, 3, 3, &plan, v, false);
        }
    }

    #[test]
    fn parallel_execution_matches() {
        let plan = FmmPlan::new(vec![strassen()]);
        for v in Variant::ALL {
            check(32, 24, 40, &plan, v, true);
        }
    }

    #[test]
    fn rank_k_update_shape() {
        // The paper's motivating shape: large m=n, small k.
        let plan = FmmPlan::new(vec![strassen()]);
        check(48, 8, 48, &plan, Variant::Abc, false);
    }

    #[test]
    fn variant_names() {
        assert_eq!(Variant::Naive.name(), "Naive");
        assert_eq!(Variant::Ab.name(), "AB");
        assert_eq!(Variant::Abc.name(), "ABC");
    }

    #[test]
    fn workspace_requirements_match_allocations() {
        // The declared workspace sizes must equal what execution actually
        // occupies in the arena (ABC: nothing; AB: M_r; Naive: M_r + T_A +
        // T_B).
        let plan = FmmPlan::new(vec![strassen()]);
        let (m, k, n) = (16, 12, 20);
        assert_eq!(Variant::Abc.workspace_elements(&plan, m, k, n), 0);
        assert_eq!(Variant::Ab.workspace_elements(&plan, m, k, n), 8 * 10);
        assert_eq!(Variant::Naive.workspace_elements(&plan, m, k, n), 8 * 10 + 8 * 6 + 6 * 10);
        for variant in Variant::ALL {
            let a = fill::bench_workload(m, k, 1);
            let b = fill::bench_workload(k, n, 2);
            let mut c = fill::bench_workload(m, n, 3);
            let mut ctx = FmmContext::new(BlockingParams::tiny());
            fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, variant, &mut ctx);
            assert_eq!(
                ctx.fmm_workspace_elements(),
                variant.workspace_elements(&plan, m, k, n),
                "variant {}",
                variant.name()
            );
        }
    }

    #[test]
    fn empty_core_execution_clears_stale_layout() {
        // A reused context must not report the previous execution's
        // workspace when the next problem's core is empty (m < partition
        // dim: everything goes through rim GEMMs).
        let plan = FmmPlan::new(vec![strassen()]);
        let mut ctx = FmmContext::new(BlockingParams::tiny());
        let a = fill::bench_workload(12, 16, 1);
        let b = fill::bench_workload(16, 20, 2);
        let mut c = Matrix::zeros(12, 20);
        fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Naive, &mut ctx);
        assert!(ctx.fmm_workspace_elements() > 0);

        let a = fill::bench_workload(1, 8, 3);
        let b = fill::bench_workload(8, 8, 4);
        let mut c = Matrix::zeros(1, 8);
        fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Naive, &mut ctx);
        assert!(ctx.last_layout().is_none(), "empty core leaves no layout");
        assert_eq!(ctx.fmm_workspace_elements(), 0);
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < 1e-11);
    }

    #[test]
    fn preplanned_context_never_reallocates() {
        // Preplanning sizes the arena up-front; the execution itself (and
        // any repeat of the same or a smaller shape) must not grow it.
        let plan = FmmPlan::new(vec![strassen()]);
        let (m, k, n) = (33, 29, 41);
        let mut ctx = FmmContext::new(BlockingParams::tiny());
        ctx.preplan(&plan, Variant::Naive, m, k, n);
        let grows = ctx.arena_grow_count();
        assert_eq!(grows, 1, "preplan allocates exactly once");
        let a = fill::bench_workload(m, k, 1);
        let b = fill::bench_workload(k, n, 2);
        for _ in 0..3 {
            let mut c = fill::bench_workload(m, n, 3);
            fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Naive, &mut ctx);
            fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Ab, &mut ctx);
            fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Abc, &mut ctx);
        }
        assert_eq!(ctx.arena_grow_count(), grows, "warm executions allocate nothing");
    }
}
