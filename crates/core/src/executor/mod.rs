//! FMM executors: the Naive, AB, and ABC implementations (paper §4.1).
//!
//! All three variants iterate the `R_L` products of the composed plan
//! (paper eq. (5)); they differ in *where* the linear combinations happen:
//!
//! | variant | `ΣuᵢAᵢ`, `ΣvⱼBⱼ`        | `C_p += w·M_r`                   |
//! |---------|--------------------------|----------------------------------|
//! | Naive   | explicit temporaries     | explicit `M_r` buffer, then axpy |
//! | AB      | folded into packing      | explicit `M_r` buffer, then axpy |
//! | ABC     | folded into packing      | multi-destination micro-kernel   |
//!
//! Problem sizes that are not multiples of the aggregate partition dims are
//! handled by dynamic peeling ([`crate::peeling`]): an FMM core plus rim
//! GEMM calls.

mod ab;
mod abc;
mod common;
mod naive;

pub use common::{DestBlocks, OperandBlocks};

use crate::peeling;
use crate::plan::FmmPlan;
use fmm_dense::{MatMut, MatRef, Matrix};
use fmm_gemm::{BlockingParams, DestTile, GemmWorkspace};

/// Which FMM implementation strategy to run (paper §4.1 "Further
/// variations").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Temporaries for operand sums and for `M_r`.
    Naive,
    /// Operand sums folded into packing; `M_r` still materialized.
    Ab,
    /// Operand sums in packing and `M_r` scattered straight into `C`.
    Abc,
}

impl Variant {
    /// All variants, in the paper's order.
    pub const ALL: [Variant; 3] = [Variant::Naive, Variant::Ab, Variant::Abc];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Naive => "Naive",
            Variant::Ab => "AB",
            Variant::Abc => "ABC",
        }
    }

    /// Extra workspace (in `f64` elements, beyond the GEMM packing buffers
    /// that plain GEMM needs too) this variant requires for an `(m, k, n)`
    /// core problem under `plan` — the paper's headline resource claim:
    ///
    /// * ABC: **zero** (linear combinations live in packing and the
    ///   micro-kernel epilogue);
    /// * AB: one `M_r` block (`m/M̃ · n/Ñ`);
    /// * Naive: `M_r` plus the two operand-sum blocks.
    pub fn workspace_elements(self, plan: &crate::plan::FmmPlan, m: usize, k: usize, n: usize) -> usize {
        let (mt, kt, nt) = plan.partition_dims();
        let (bm, bk, bn) = (m / mt, k / kt, n / nt);
        match self {
            Variant::Abc => 0,
            Variant::Ab => bm * bn,
            Variant::Naive => bm * bn + bm * bk + bk * bn,
        }
    }
}

/// Reusable state across FMM invocations: blocking parameters, packing
/// workspace, and the temporaries the Naive/AB variants need.
pub struct FmmContext {
    /// Blocking parameters passed to the underlying GEMM driver.
    pub params: BlockingParams,
    pub(crate) ws: GemmWorkspace,
    pub(crate) ta: Option<Matrix>,
    pub(crate) tb: Option<Matrix>,
    pub(crate) mr: Option<Matrix>,
    /// Execute block products with the rayon-parallel driver.
    pub(crate) parallel: bool,
}

impl FmmContext {
    /// Context with the default (paper §5.1) blocking parameters.
    pub fn with_defaults() -> Self {
        Self::new(BlockingParams::default())
    }

    /// Context with explicit blocking parameters.
    pub fn new(params: BlockingParams) -> Self {
        let ws = GemmWorkspace::for_params(&params);
        Self { params, ws, ta: None, tb: None, mr: None, parallel: false }
    }
}

/// Execute `C += A · B` with the given plan and variant, sequentially.
///
/// Dimensions are arbitrary; fringes are handled by dynamic peeling.
pub fn fmm_execute(
    c: MatMut<'_>,
    a: MatRef<'_>,
    b: MatRef<'_>,
    plan: &FmmPlan,
    variant: Variant,
    ctx: &mut FmmContext,
) {
    ctx.parallel = false;
    execute_impl(c, a, b, plan, variant, ctx)
}

/// As [`fmm_execute`], but each block product uses the rayon-parallel GEMM
/// driver (the paper's loop-3 data parallelism); the `R_L` products remain
/// sequential, exactly as in the paper's implementation.
pub fn fmm_execute_parallel(
    c: MatMut<'_>,
    a: MatRef<'_>,
    b: MatRef<'_>,
    plan: &FmmPlan,
    variant: Variant,
    ctx: &mut FmmContext,
) {
    ctx.parallel = true;
    execute_impl(c, a, b, plan, variant, ctx)
}

fn execute_impl(
    mut c: MatMut<'_>,
    a: MatRef<'_>,
    b: MatRef<'_>,
    plan: &FmmPlan,
    variant: Variant,
    ctx: &mut FmmContext,
) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "A/B inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "C shape mismatch");

    let peel_plan = peeling::peel(m, k, n, plan.partition_dims());
    let (mc, kc, nc) = peel_plan.core;

    if mc > 0 && kc > 0 && nc > 0 {
        let a_core = a.submatrix(0, 0, mc, kc);
        let b_core = b.submatrix(0, 0, kc, nc);
        let c_core = c.reborrow().submatrix(0, 0, mc, nc);
        run_core(c_core, a_core, b_core, plan, variant, ctx);
    }

    for rim in &peel_plan.rims {
        let a_rim = a.submatrix(rim.rows.start, rim.inner.start, rim.rows.len(), rim.inner.len());
        let b_rim = b.submatrix(rim.inner.start, rim.cols.start, rim.inner.len(), rim.cols.len());
        let c_rim =
            c.reborrow().submatrix(rim.rows.start, rim.cols.start, rim.rows.len(), rim.cols.len());
        block_product(
            ctx,
            &mut [DestTile::new(c_rim, 1.0)],
            &[(1.0, a_rim)],
            &[(1.0, b_rim)],
            false,
        );
    }
}

fn run_core(
    c: MatMut<'_>,
    a: MatRef<'_>,
    b: MatRef<'_>,
    plan: &FmmPlan,
    variant: Variant,
    ctx: &mut FmmContext,
) {
    let a_blocks = OperandBlocks::new(a, plan.a_grid());
    let b_blocks = OperandBlocks::new(b, plan.b_grid());
    let c_blocks = DestBlocks::new(c, plan.c_grid());
    match variant {
        Variant::Naive => naive::run(plan, &a_blocks, &b_blocks, &c_blocks, ctx),
        Variant::Ab => ab::run(plan, &a_blocks, &b_blocks, &c_blocks, ctx),
        Variant::Abc => abc::run(plan, &a_blocks, &b_blocks, &c_blocks, ctx),
    }
}

/// Dispatch one block product to the sequential or parallel GEMM driver.
pub(crate) fn block_product(
    ctx: &mut FmmContext,
    dests: &mut [DestTile<'_>],
    a_terms: &[(f64, MatRef<'_>)],
    b_terms: &[(f64, MatRef<'_>)],
    overwrite: bool,
) {
    if ctx.parallel {
        if overwrite {
            fmm_gemm::parallel::gemm_sums_parallel_overwrite(dests, a_terms, b_terms, &ctx.params);
        } else {
            fmm_gemm::parallel::gemm_sums_parallel(dests, a_terms, b_terms, &ctx.params);
        }
    } else if overwrite {
        fmm_gemm::driver::gemm_sums_overwrite(dests, a_terms, b_terms, &ctx.params, &mut ctx.ws);
    } else {
        fmm_gemm::driver::gemm_sums(dests, a_terms, b_terms, &ctx.params, &mut ctx.ws);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::strassen;
    use fmm_dense::{fill, norms};

    fn check(m: usize, k: usize, n: usize, plan: &FmmPlan, variant: Variant, parallel: bool) {
        let a = fill::bench_workload(m, k, 1);
        let b = fill::bench_workload(k, n, 2);
        let mut c = fill::bench_workload(m, n, 3);
        let c_orig = c.clone();
        let mut ctx = FmmContext::new(BlockingParams::tiny());
        if parallel {
            fmm_execute_parallel(c.as_mut(), a.as_ref(), b.as_ref(), plan, variant, &mut ctx);
        } else {
            fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), plan, variant, &mut ctx);
        }
        let mut c_ref = c_orig;
        fmm_gemm::reference::matmul_into(c_ref.as_mut(), a.as_ref(), b.as_ref());
        let err = norms::max_abs_diff(c.as_ref(), c_ref.as_ref());
        let tol = norms::fmm_tolerance(k, plan.num_levels());
        assert!(
            err < tol,
            "{} {} m={m} k={k} n={n} parallel={parallel}: err={err} tol={tol}",
            plan.describe(),
            variant.name()
        );
    }

    #[test]
    fn one_level_strassen_all_variants_divisible() {
        let plan = FmmPlan::new(vec![strassen()]);
        for v in Variant::ALL {
            check(16, 16, 16, &plan, v, false);
        }
    }

    #[test]
    fn one_level_strassen_with_fringes() {
        let plan = FmmPlan::new(vec![strassen()]);
        for v in Variant::ALL {
            check(17, 19, 21, &plan, v, false);
        }
    }

    #[test]
    fn two_level_strassen_all_variants() {
        let plan = FmmPlan::uniform(strassen(), 2);
        for v in Variant::ALL {
            check(36, 36, 36, &plan, v, false);
            check(37, 35, 33, &plan, v, false);
        }
    }

    #[test]
    fn problem_smaller_than_partition_falls_back_to_gemm() {
        let plan = FmmPlan::uniform(strassen(), 2); // needs multiples of 4
        for v in Variant::ALL {
            check(3, 3, 3, &plan, v, false);
        }
    }

    #[test]
    fn parallel_execution_matches() {
        let plan = FmmPlan::new(vec![strassen()]);
        for v in Variant::ALL {
            check(32, 24, 40, &plan, v, true);
        }
    }

    #[test]
    fn rank_k_update_shape() {
        // The paper's motivating shape: large m=n, small k.
        let plan = FmmPlan::new(vec![strassen()]);
        check(48, 8, 48, &plan, Variant::Abc, false);
    }

    #[test]
    fn variant_names() {
        assert_eq!(Variant::Naive.name(), "Naive");
        assert_eq!(Variant::Ab.name(), "AB");
        assert_eq!(Variant::Abc.name(), "ABC");
    }

    #[test]
    fn workspace_requirements_match_allocations() {
        // The declared workspace sizes must equal what execution actually
        // allocates (ABC: nothing; AB: M_r; Naive: M_r + T_A + T_B).
        let plan = FmmPlan::new(vec![strassen()]);
        let (m, k, n) = (16, 12, 20);
        assert_eq!(Variant::Abc.workspace_elements(&plan, m, k, n), 0);
        assert_eq!(Variant::Ab.workspace_elements(&plan, m, k, n), 8 * 10);
        assert_eq!(
            Variant::Naive.workspace_elements(&plan, m, k, n),
            8 * 10 + 8 * 6 + 6 * 10
        );
        for variant in Variant::ALL {
            let a = fill::bench_workload(m, k, 1);
            let b = fill::bench_workload(k, n, 2);
            let mut c = fill::bench_workload(m, n, 3);
            let mut ctx = FmmContext::new(BlockingParams::tiny());
            fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, variant, &mut ctx);
            let allocated = ctx.mr.as_ref().map_or(0, |x| x.rows() * x.cols())
                + ctx.ta.as_ref().map_or(0, |x| x.rows() * x.cols())
                + ctx.tb.as_ref().map_or(0, |x| x.rows() * x.cols());
            assert_eq!(
                allocated,
                variant.workspace_elements(&plan, m, k, n),
                "variant {}",
                variant.name()
            );
        }
    }
}
