//! The AB variant: operand sums folded into packing, `M_r` materialized.
//!
//! Compared with ABC, the product is written once into a `M_r` temporary and
//! then distributed to the `C_p` destinations with explicit axpy updates —
//! this trades extra `C`-side memory traffic (`3·nnz(⊗W)` buffer touches in
//! the paper's model) for touching each `C_p` exactly once per non-zero.
//! The paper shows this wins for large `k` where the rank-k accumulation
//! through the micro-kernel would re-read `C` many times.
//!
//! Warm-path allocation contract: `fmm-check: contract(warm-alloc-free)`
//! (see README § Static analysis) — `M_r` lives in the preplanned arena.

// fmm-check: contract(warm-alloc-free)

use super::common::{gather_terms, DestBlocks, OperandBlocks};
use super::{ArenaViews, GemmDispatch};
use crate::plan::FmmPlan;
use fmm_dense::ops;
use fmm_gemm::{DestTile, GemmScalar};

pub(super) fn run<T: GemmScalar>(
    plan: &FmmPlan,
    a_blocks: &OperandBlocks<'_, T>,
    b_blocks: &OperandBlocks<'_, T>,
    c_blocks: &DestBlocks<'_, T>,
    views: ArenaViews<'_, T>,
    gemm: &mut GemmDispatch<'_, T>,
) {
    let ArenaViews { mut mr, .. } = views;
    for r in 0..plan.rank() {
        let a_terms = gather_terms(plan.u(), r, a_blocks);
        let b_terms = gather_terms(plan.v(), r, b_blocks);
        // M_r = (sum u A)(sum v B), overwriting the reused arena slice.
        gemm.block_product(&mut [DestTile::new(mr.reborrow(), T::ONE)], &a_terms, &b_terms, true);
        for (p, w) in plan.w().col_nonzeros(r) {
            // SAFETY: one destination view alive at a time.
            let dest = unsafe { c_blocks.get(p) };
            ops::axpy(dest, T::from_f64(w), mr.as_ref()).expect("block shapes agree");
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::executor::{fmm_execute, FmmContext, Variant};
    use crate::plan::FmmPlan;
    use crate::registry::strassen;
    use fmm_dense::{fill, norms, Matrix};
    use fmm_gemm::BlockingParams;

    #[test]
    fn ab_matches_reference_and_reuses_mr_buffer() {
        let plan = FmmPlan::new(vec![strassen()]);
        let a = fill::bench_workload(16, 16, 1);
        let b = fill::bench_workload(16, 16, 2);
        let mut c = Matrix::zeros(16, 16);
        let mut ctx = FmmContext::new(BlockingParams::tiny());
        fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Ab, &mut ctx);
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < 1e-11);
        // The M_r temporary exists (unlike ABC) and has block shape; the
        // operand-sum temporaries do not (unlike Naive).
        let layout = *ctx.last_layout().expect("core executed");
        assert_eq!(layout.mr, (8, 8));
        assert_eq!(layout.ta, (0, 0));
        assert_eq!(layout.tb, (0, 0));
        assert_eq!(ctx.fmm_workspace_elements(), 8 * 8);
    }

    #[test]
    fn ab_two_level_hybrid() {
        let c223 = crate::compose::stack_n(&strassen(), &crate::compose::classical(2, 2, 1));
        let plan = FmmPlan::new(vec![strassen(), c223]);
        let (m, k, n) = (16, 16, 24);
        let a = fill::bench_workload(m, k, 3);
        let b = fill::bench_workload(k, n, 4);
        let mut c = Matrix::zeros(m, n);
        let mut ctx = FmmContext::new(BlockingParams::tiny());
        fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Ab, &mut ctx);
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < 1e-10);
    }
}
