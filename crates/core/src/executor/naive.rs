//! The Naive variant: a classical FMM implementation with explicit
//! temporaries (paper §4.1) — the structural equivalent of the reference
//! implementations of Benson–Ballard [1] that the paper compares against.
//!
//! For each product `r`: materialize `T_A = Σ U[i,r]·A_i` and
//! `T_B = Σ V[j,r]·B_j`, compute `M_r = T_A · T_B` with a plain GEMM, then
//! `C_p += W[p,r]·M_r`. Requires `m/M̃·k/K̃ + k/K̃·n/Ñ + m/M̃·n/Ñ` extra
//! workspace and pays the extra memory traffic the paper's model charges
//! via the `T^{A+}_m`, `T^{B+}_m`, `T^{C+}_m` terms.
//!
//! Warm-path allocation contract: `fmm-check: contract(warm-alloc-free)`
//! (see README § Static analysis) — all three temporaries live in the
//! preplanned arena.

// fmm-check: contract(warm-alloc-free)

use super::common::{gather_terms, DestBlocks, OperandBlocks};
use super::{ArenaViews, GemmDispatch};
use crate::plan::FmmPlan;
use fmm_dense::ops;
use fmm_gemm::{DestTile, GemmScalar};

pub(super) fn run<T: GemmScalar>(
    plan: &FmmPlan,
    a_blocks: &OperandBlocks<'_, T>,
    b_blocks: &OperandBlocks<'_, T>,
    c_blocks: &DestBlocks<'_, T>,
    views: ArenaViews<'_, T>,
    gemm: &mut GemmDispatch<'_, T>,
) {
    let ArenaViews { mut ta, mut tb, mut mr } = views;
    for r in 0..plan.rank() {
        let a_terms = gather_terms(plan.u(), r, a_blocks);
        let b_terms = gather_terms(plan.v(), r, b_blocks);

        ops::linear_combination(ta.reborrow(), &a_terms).expect("A block shapes agree");
        ops::linear_combination(tb.reborrow(), &b_terms).expect("B block shapes agree");

        gemm.block_product(
            &mut [DestTile::new(mr.reborrow(), T::ONE)],
            &[(T::ONE, ta.as_ref())],
            &[(T::ONE, tb.as_ref())],
            true,
        );

        for (p, w) in plan.w().col_nonzeros(r) {
            // SAFETY: one destination view alive at a time.
            let dest = unsafe { c_blocks.get(p) };
            ops::axpy(dest, T::from_f64(w), mr.as_ref()).expect("block shapes agree");
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::executor::{fmm_execute, FmmContext, Variant};
    use crate::plan::FmmPlan;
    use crate::registry::strassen;
    use fmm_dense::{fill, norms, Matrix};
    use fmm_gemm::BlockingParams;

    #[test]
    fn naive_matches_reference_and_allocates_all_temporaries() {
        let plan = FmmPlan::new(vec![strassen()]);
        let (m, k, n) = (12, 16, 20);
        let a = fill::bench_workload(m, k, 1);
        let b = fill::bench_workload(k, n, 2);
        let mut c = Matrix::zeros(m, n);
        let mut ctx = FmmContext::new(BlockingParams::tiny());
        fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Naive, &mut ctx);
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < 1e-11);
        let layout = ctx.last_layout().expect("core executed");
        assert_eq!(layout.ta, (6, 8), "T_A has block shape m/2 x k/2");
        assert_eq!(layout.tb, (8, 10));
        assert_eq!(layout.mr, (6, 10));
        assert_eq!(ctx.fmm_workspace_elements(), 6 * 8 + 8 * 10 + 6 * 10);
    }

    #[test]
    fn naive_three_level() {
        let plan = FmmPlan::uniform(strassen(), 3);
        let a = fill::bench_workload(24, 24, 5);
        let b = fill::bench_workload(24, 24, 6);
        let mut c = Matrix::zeros(24, 24);
        let mut ctx = FmmContext::new(BlockingParams::tiny());
        fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Naive, &mut ctx);
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        let tol = norms::fmm_tolerance(24, 3);
        assert!(norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < tol);
    }
}
