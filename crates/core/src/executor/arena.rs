//! Preplanned workspace arena for the FMM temporaries.
//!
//! The Naive and AB variants need scratch matrices (`T_A`, `T_B`, `M_r`)
//! whose exact sizes are known up-front from the paper's workspace formulas
//! ([`Variant::workspace_elements`], §4.1). Instead of growing per-slot
//! heap allocations lazily, the executor sizes one arena before the first
//! product and carves it into disjoint column-major views. The arena never
//! shrinks, so a long-lived context (or engine) reaches a steady state
//! where repeated executions perform **zero** heap allocation for FMM
//! temporaries — [`WorkspaceArena::grow_count`] makes that property
//! testable.

use super::Variant;
use crate::plan::FmmPlan;
use fmm_dense::{AlignedBuf, MatMut, MatRef, Scalar};

/// The block shapes one FMM core execution needs from the arena.
///
/// All shapes are in elements of the *block* grid: for a core problem
/// `(m, k, n)` under a plan with aggregate partition dims `(M̃, K̃, Ñ)`,
/// `T_A` is `m/M̃ x k/K̃`, `T_B` is `k/K̃ x n/Ñ`, and `M_r` is `m/M̃ x n/Ñ`.
/// Variants that skip a temporary get a `(0, 0)` shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArenaLayout {
    /// `(rows, cols)` of the operand-sum temporary `T_A` (Naive only).
    pub ta: (usize, usize),
    /// `(rows, cols)` of the operand-sum temporary `T_B` (Naive only).
    pub tb: (usize, usize),
    /// `(rows, cols)` of the product temporary `M_r` (Naive and AB).
    pub mr: (usize, usize),
}

impl ArenaLayout {
    /// Layout for a core problem `(m, k, n)` (dimensions divisible by the
    /// plan's aggregate partition dims) executed as `variant` under `plan`.
    pub fn for_core(variant: Variant, plan: &FmmPlan, m: usize, k: usize, n: usize) -> Self {
        let (mt, kt, nt) = plan.partition_dims();
        debug_assert!(
            m.is_multiple_of(mt) && k.is_multiple_of(kt) && n.is_multiple_of(nt),
            "core dims must divide"
        );
        let (bm, bk, bn) = (m / mt, k / kt, n / nt);
        match variant {
            Variant::Abc => Self { ta: (0, 0), tb: (0, 0), mr: (0, 0) },
            Variant::Ab => Self { ta: (0, 0), tb: (0, 0), mr: (bm, bn) },
            Variant::Naive => Self { ta: (bm, bk), tb: (bk, bn), mr: (bm, bn) },
        }
    }

    /// Total arena elements this layout occupies — by construction equal to
    /// [`Variant::workspace_elements`] for the same `(plan, m, k, n)`.
    pub fn total_elements(&self) -> usize {
        self.ta.0 * self.ta.1 + self.tb.0 * self.tb.1 + self.mr.0 * self.mr.1
    }
}

/// The three disjoint scratch views of one core execution.
pub struct ArenaViews<'a, T = f64> {
    /// `T_A` view (empty for AB/ABC).
    pub ta: MatMut<'a, T>,
    /// `T_B` view (empty for AB/ABC).
    pub tb: MatMut<'a, T>,
    /// `M_r` view (empty for ABC).
    pub mr: MatMut<'a, T>,
}

/// A grow-only scratch allocation carved into [`ArenaViews`] per execution,
/// generic over the scalar it stores (default `f64`).
pub struct WorkspaceArena<T = f64> {
    buf: AlignedBuf<T>,
    grows: u64,
}

impl<T: Scalar> WorkspaceArena<T> {
    /// An empty arena; the first [`WorkspaceArena::preplan`] sizes it.
    pub fn new() -> Self {
        Self { buf: AlignedBuf::zeroed(0), grows: 0 }
    }

    /// Ensure capacity for `layout`, reallocating only when it grows beyond
    /// anything seen before.
    pub fn preplan(&mut self, layout: &ArenaLayout) {
        let need = layout.total_elements();
        if need > self.buf.len() {
            self.buf = AlignedBuf::zeroed(need);
            self.grows += 1;
        }
    }

    /// Current capacity in scalar elements.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// How many times the arena has (re)allocated — stays flat once warm.
    pub fn grow_count(&self) -> u64 {
        self.grows
    }

    /// Ensure capacity for `tasks` task-private copies of `layout` (the
    /// BFS/hybrid schedulers' per-task workspace regions), reallocating only
    /// on growth. Idempotent; never shrinks.
    pub fn preplan_tasks(&mut self, layout: &ArenaLayout, tasks: usize) {
        let need = layout.total_elements() * tasks;
        if need > self.buf.len() {
            self.buf = AlignedBuf::zeroed(need);
            self.grows += 1;
        }
    }

    /// Carve the arena into `tasks` disjoint per-task regions, each shaped
    /// as `layout`. The returned descriptor is `Sync`, so worker threads
    /// can each materialize the views of their own task; growth happens
    /// here (once), never inside a task.
    pub fn task_slots(&mut self, layout: &ArenaLayout, tasks: usize) -> TaskSlots<'_, T> {
        self.preplan_tasks(layout, tasks);
        TaskSlots {
            base: self.buf.as_mut_ptr(),
            stride: layout.total_elements(),
            layout: *layout,
            tasks,
            _marker: std::marker::PhantomData,
        }
    }

    /// Carve the arena into the disjoint views of `layout`, growing first
    /// if the layout was not preplanned.
    pub fn views(&mut self, layout: &ArenaLayout) -> ArenaViews<'_, T> {
        self.preplan(layout);
        let (ta_rows, ta_cols) = layout.ta;
        let (tb_rows, tb_cols) = layout.tb;
        let (mr_rows, mr_cols) = layout.mr;
        let (ta_slice, rest) = self.buf.split_at_mut(ta_rows * ta_cols);
        let (tb_slice, rest) = rest.split_at_mut(tb_rows * tb_cols);
        let mr_slice = &mut rest[..mr_rows * mr_cols];
        ArenaViews {
            ta: MatMut::from_col_major(ta_slice, ta_rows, ta_cols, ta_rows.max(1)),
            tb: MatMut::from_col_major(tb_slice, tb_rows, tb_cols, tb_rows.max(1)),
            mr: MatMut::from_col_major(mr_slice, mr_rows, mr_cols, mr_rows.max(1)),
        }
    }
}

impl<T: Scalar> Default for WorkspaceArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// `tasks` disjoint per-task workspace regions carved from one arena: task
/// `r` owns elements `[r·stride, (r+1)·stride)`, shaped as the shared
/// [`ArenaLayout`]. Holds raw parts of the parent arena (like
/// [`super::DestBlocks`] does for `C`) so that several tasks' views can be
/// alive at once, on different threads.
pub struct TaskSlots<'a, T = f64> {
    base: *mut T,
    stride: usize,
    layout: ArenaLayout,
    tasks: usize,
    _marker: std::marker::PhantomData<&'a mut T>,
}

// SAFETY: every accessor that materializes a view is an `unsafe fn` whose
// contract requires disjoint task indices (or read-only access after all
// writers finished); sharing the descriptor itself grants no capability
// beyond those contracts.
unsafe impl<T: Scalar> Send for TaskSlots<'_, T> {}
unsafe impl<T: Scalar> Sync for TaskSlots<'_, T> {}

// The carve accessors below run inside warm task execution, so they carry
// `fmm-check`'s allocation contract: pure pointer arithmetic, no heap
// (growth happened once, in `WorkspaceArena::preplan_tasks`).
// fmm-check: contract(warm-alloc-free)
impl<'a, T: Scalar> TaskSlots<'a, T> {
    /// The per-task layout.
    pub fn layout(&self) -> &ArenaLayout {
        &self.layout
    }

    /// Number of task regions.
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// Total arena elements occupied by all task regions.
    pub fn total_elements(&self) -> usize {
        self.stride * self.tasks
    }

    /// The scratch views of task `r`.
    ///
    /// # Safety
    /// Views for *distinct* `r` address disjoint elements, so several may
    /// be alive simultaneously (on different threads); the caller must not
    /// obtain two view sets of the same `r` at once, nor use a view beyond
    /// the parent borrow.
    pub unsafe fn views(&self, r: usize) -> ArenaViews<'a, T> {
        assert!(r < self.tasks, "task index {r} out of range");
        let (ta_rows, ta_cols) = self.layout.ta;
        let (tb_rows, tb_cols) = self.layout.tb;
        let (mr_rows, mr_cols) = self.layout.mr;
        // SAFETY: `r < self.tasks` (asserted above) keeps every offset inside
        // the arena region carved by `preplan_tasks`; the three sub-regions
        // are disjoint by construction of `stride`, and exclusivity per `r`
        // is the caller's contract.
        unsafe {
            let ta_ptr = self.base.add(r * self.stride);
            let tb_ptr = ta_ptr.add(ta_rows * ta_cols);
            let mr_ptr = tb_ptr.add(tb_rows * tb_cols);
            ArenaViews {
                ta: MatMut::from_raw_parts(ta_ptr, ta_rows, ta_cols, 1, ta_rows.max(1) as isize),
                tb: MatMut::from_raw_parts(tb_ptr, tb_rows, tb_cols, 1, tb_rows.max(1) as isize),
                mr: MatMut::from_raw_parts(mr_ptr, mr_rows, mr_cols, 1, mr_rows.max(1) as isize),
            }
        }
    }

    /// Read-only view of task `r`'s product block `M_r` (the merge phase's
    /// input).
    ///
    /// # Safety
    /// No mutable view of task `r` may be alive (i.e. the compute phase
    /// that wrote `M_r` has completed).
    pub unsafe fn mr(&self, r: usize) -> MatRef<'a, T> {
        assert!(r < self.tasks, "task index {r} out of range");
        let (ta_rows, ta_cols) = self.layout.ta;
        let (tb_rows, tb_cols) = self.layout.tb;
        let (mr_rows, mr_cols) = self.layout.mr;
        // SAFETY: `r < self.tasks` (asserted above) keeps the offset inside
        // the arena; no mutable view of task `r` is alive per the caller's
        // contract, so a shared read view is sound.
        unsafe {
            let mr_ptr = self.base.add(r * self.stride + ta_rows * ta_cols + tb_rows * tb_cols);
            MatRef::from_raw_parts(mr_ptr, mr_rows, mr_cols, 1, mr_rows.max(1) as isize)
        }
    }
}

impl<T: Scalar> std::fmt::Debug for WorkspaceArena<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkspaceArena(capacity={}, grows={})", self.buf.len(), self.grows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::strassen;

    #[test]
    fn layout_matches_variant_workspace_elements() {
        let plan = FmmPlan::new(vec![strassen()]);
        let (m, k, n) = (16, 12, 20);
        for variant in Variant::ALL {
            let layout = ArenaLayout::for_core(variant, &plan, m, k, n);
            assert_eq!(
                layout.total_elements(),
                variant.workspace_elements(&plan, m, k, n),
                "variant {}",
                variant.name()
            );
        }
    }

    #[test]
    fn views_are_disjoint_and_shaped() {
        let plan = FmmPlan::new(vec![strassen()]);
        let layout = ArenaLayout::for_core(Variant::Naive, &plan, 16, 12, 20);
        let mut arena = WorkspaceArena::new();
        let mut views = arena.views(&layout);
        assert_eq!((views.ta.rows(), views.ta.cols()), (8, 6));
        assert_eq!((views.tb.rows(), views.tb.cols()), (6, 10));
        assert_eq!((views.mr.rows(), views.mr.cols()), (8, 10));
        views.ta.fill(1.0);
        views.tb.fill(2.0);
        views.mr.fill(3.0);
        assert_eq!(views.ta.at(7, 5), 1.0);
        assert_eq!(views.tb.at(5, 9), 2.0);
        assert_eq!(views.mr.at(7, 9), 3.0);
    }

    #[test]
    fn preplan_grows_once_then_stays_flat() {
        let plan = FmmPlan::new(vec![strassen()]);
        let big = ArenaLayout::for_core(Variant::Naive, &plan, 32, 32, 32);
        let small = ArenaLayout::for_core(Variant::Ab, &plan, 16, 16, 16);
        let mut arena = WorkspaceArena::<f64>::new();
        assert_eq!(arena.grow_count(), 0);
        arena.preplan(&big);
        assert_eq!(arena.grow_count(), 1);
        let cap = arena.capacity();
        arena.preplan(&small);
        arena.preplan(&big);
        let _ = arena.views(&big);
        assert_eq!(arena.grow_count(), 1, "no reallocation once warm");
        assert_eq!(arena.capacity(), cap);
    }

    #[test]
    fn task_slots_are_disjoint_per_task() {
        let plan = FmmPlan::new(vec![strassen()]);
        let layout = ArenaLayout::for_core(Variant::Naive, &plan, 8, 8, 8);
        let mut arena = WorkspaceArena::new();
        let slots = arena.task_slots(&layout, 7);
        assert_eq!(slots.tasks(), 7);
        assert_eq!(slots.total_elements(), 7 * layout.total_elements());
        // Fill every task region with a task-specific value, from several
        // threads at once, then check nothing bled across regions.
        std::thread::scope(|s| {
            for r in 0..7 {
                let slots = &slots;
                s.spawn(move || {
                    // SAFETY: distinct r -> disjoint regions.
                    let mut views = unsafe { slots.views(r) };
                    views.ta.fill(r as f64);
                    views.tb.fill(10.0 + r as f64);
                    views.mr.fill(100.0 + r as f64);
                });
            }
        });
        for r in 0..7 {
            // SAFETY: the writer threads joined above; reads can't race.
            let views = unsafe { slots.views(r) };
            assert_eq!(views.ta.at(3, 3), r as f64);
            assert_eq!(views.tb.at(0, 0), 10.0 + r as f64);
            assert_eq!(views.mr.at(3, 0), 100.0 + r as f64);
            // SAFETY: as above — no concurrent writer remains.
            let mr = unsafe { slots.mr(r) };
            assert_eq!(mr.at(3, 0), 100.0 + r as f64);
            assert_eq!((mr.rows(), mr.cols()), (4, 4));
        }
    }

    #[test]
    fn task_slots_grow_once_then_stay_flat() {
        let plan = FmmPlan::new(vec![strassen()]);
        let layout = ArenaLayout::for_core(Variant::Ab, &plan, 16, 16, 16);
        let mut arena = WorkspaceArena::<f64>::new();
        arena.preplan_tasks(&layout, 7);
        assert_eq!(arena.grow_count(), 1);
        let _ = arena.task_slots(&layout, 7);
        let smaller = ArenaLayout::for_core(Variant::Ab, &plan, 8, 8, 8);
        let _ = arena.task_slots(&smaller, 7);
        assert_eq!(arena.grow_count(), 1, "warm task carving allocates nothing");
    }

    #[test]
    fn abc_layout_occupies_nothing() {
        let plan = FmmPlan::new(vec![strassen()]);
        let layout = ArenaLayout::for_core(Variant::Abc, &plan, 64, 64, 64);
        assert_eq!(layout.total_elements(), 0);
        let mut arena = WorkspaceArena::<f64>::new();
        let views = arena.views(&layout);
        assert_eq!(views.mr.rows() * views.mr.cols(), 0);
        assert_eq!(arena.capacity(), 0);
        assert_eq!(arena.grow_count(), 0);
    }
}
