//! Preplanned workspace arena for the FMM temporaries.
//!
//! The Naive and AB variants need scratch matrices (`T_A`, `T_B`, `M_r`)
//! whose exact sizes are known up-front from the paper's workspace formulas
//! ([`Variant::workspace_elements`], §4.1). Instead of growing per-slot
//! heap allocations lazily, the executor sizes one arena before the first
//! product and carves it into disjoint column-major views. The arena never
//! shrinks, so a long-lived context (or engine) reaches a steady state
//! where repeated executions perform **zero** heap allocation for FMM
//! temporaries — [`WorkspaceArena::grow_count`] makes that property
//! testable.

use super::Variant;
use crate::plan::FmmPlan;
use fmm_dense::{AlignedBuf, MatMut};

/// The block shapes one FMM core execution needs from the arena.
///
/// All shapes are in elements of the *block* grid: for a core problem
/// `(m, k, n)` under a plan with aggregate partition dims `(M̃, K̃, Ñ)`,
/// `T_A` is `m/M̃ x k/K̃`, `T_B` is `k/K̃ x n/Ñ`, and `M_r` is `m/M̃ x n/Ñ`.
/// Variants that skip a temporary get a `(0, 0)` shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArenaLayout {
    /// `(rows, cols)` of the operand-sum temporary `T_A` (Naive only).
    pub ta: (usize, usize),
    /// `(rows, cols)` of the operand-sum temporary `T_B` (Naive only).
    pub tb: (usize, usize),
    /// `(rows, cols)` of the product temporary `M_r` (Naive and AB).
    pub mr: (usize, usize),
}

impl ArenaLayout {
    /// Layout for a core problem `(m, k, n)` (dimensions divisible by the
    /// plan's aggregate partition dims) executed as `variant` under `plan`.
    pub fn for_core(variant: Variant, plan: &FmmPlan, m: usize, k: usize, n: usize) -> Self {
        let (mt, kt, nt) = plan.partition_dims();
        debug_assert!(
            m.is_multiple_of(mt) && k.is_multiple_of(kt) && n.is_multiple_of(nt),
            "core dims must divide"
        );
        let (bm, bk, bn) = (m / mt, k / kt, n / nt);
        match variant {
            Variant::Abc => Self { ta: (0, 0), tb: (0, 0), mr: (0, 0) },
            Variant::Ab => Self { ta: (0, 0), tb: (0, 0), mr: (bm, bn) },
            Variant::Naive => Self { ta: (bm, bk), tb: (bk, bn), mr: (bm, bn) },
        }
    }

    /// Total arena elements this layout occupies — by construction equal to
    /// [`Variant::workspace_elements`] for the same `(plan, m, k, n)`.
    pub fn total_elements(&self) -> usize {
        self.ta.0 * self.ta.1 + self.tb.0 * self.tb.1 + self.mr.0 * self.mr.1
    }
}

/// The three disjoint scratch views of one core execution.
pub struct ArenaViews<'a> {
    /// `T_A` view (empty for AB/ABC).
    pub ta: MatMut<'a>,
    /// `T_B` view (empty for AB/ABC).
    pub tb: MatMut<'a>,
    /// `M_r` view (empty for ABC).
    pub mr: MatMut<'a>,
}

/// A grow-only scratch allocation carved into [`ArenaViews`] per execution.
pub struct WorkspaceArena {
    buf: AlignedBuf,
    grows: u64,
}

impl WorkspaceArena {
    /// An empty arena; the first [`WorkspaceArena::preplan`] sizes it.
    pub fn new() -> Self {
        Self { buf: AlignedBuf::zeroed(0), grows: 0 }
    }

    /// Ensure capacity for `layout`, reallocating only when it grows beyond
    /// anything seen before.
    pub fn preplan(&mut self, layout: &ArenaLayout) {
        let need = layout.total_elements();
        if need > self.buf.len() {
            self.buf = AlignedBuf::zeroed(need);
            self.grows += 1;
        }
    }

    /// Current capacity in `f64` elements.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// How many times the arena has (re)allocated — stays flat once warm.
    pub fn grow_count(&self) -> u64 {
        self.grows
    }

    /// Carve the arena into the disjoint views of `layout`, growing first
    /// if the layout was not preplanned.
    pub fn views(&mut self, layout: &ArenaLayout) -> ArenaViews<'_> {
        self.preplan(layout);
        let (ta_rows, ta_cols) = layout.ta;
        let (tb_rows, tb_cols) = layout.tb;
        let (mr_rows, mr_cols) = layout.mr;
        let (ta_slice, rest) = self.buf.split_at_mut(ta_rows * ta_cols);
        let (tb_slice, rest) = rest.split_at_mut(tb_rows * tb_cols);
        let mr_slice = &mut rest[..mr_rows * mr_cols];
        ArenaViews {
            ta: MatMut::from_col_major(ta_slice, ta_rows, ta_cols, ta_rows.max(1)),
            tb: MatMut::from_col_major(tb_slice, tb_rows, tb_cols, tb_rows.max(1)),
            mr: MatMut::from_col_major(mr_slice, mr_rows, mr_cols, mr_rows.max(1)),
        }
    }
}

impl Default for WorkspaceArena {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for WorkspaceArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkspaceArena(capacity={}, grows={})", self.buf.len(), self.grows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::strassen;

    #[test]
    fn layout_matches_variant_workspace_elements() {
        let plan = FmmPlan::new(vec![strassen()]);
        let (m, k, n) = (16, 12, 20);
        for variant in Variant::ALL {
            let layout = ArenaLayout::for_core(variant, &plan, m, k, n);
            assert_eq!(
                layout.total_elements(),
                variant.workspace_elements(&plan, m, k, n),
                "variant {}",
                variant.name()
            );
        }
    }

    #[test]
    fn views_are_disjoint_and_shaped() {
        let plan = FmmPlan::new(vec![strassen()]);
        let layout = ArenaLayout::for_core(Variant::Naive, &plan, 16, 12, 20);
        let mut arena = WorkspaceArena::new();
        let mut views = arena.views(&layout);
        assert_eq!((views.ta.rows(), views.ta.cols()), (8, 6));
        assert_eq!((views.tb.rows(), views.tb.cols()), (6, 10));
        assert_eq!((views.mr.rows(), views.mr.cols()), (8, 10));
        views.ta.fill(1.0);
        views.tb.fill(2.0);
        views.mr.fill(3.0);
        assert_eq!(views.ta.at(7, 5), 1.0);
        assert_eq!(views.tb.at(5, 9), 2.0);
        assert_eq!(views.mr.at(7, 9), 3.0);
    }

    #[test]
    fn preplan_grows_once_then_stays_flat() {
        let plan = FmmPlan::new(vec![strassen()]);
        let big = ArenaLayout::for_core(Variant::Naive, &plan, 32, 32, 32);
        let small = ArenaLayout::for_core(Variant::Ab, &plan, 16, 16, 16);
        let mut arena = WorkspaceArena::new();
        assert_eq!(arena.grow_count(), 0);
        arena.preplan(&big);
        assert_eq!(arena.grow_count(), 1);
        let cap = arena.capacity();
        arena.preplan(&small);
        arena.preplan(&big);
        let _ = arena.views(&big);
        assert_eq!(arena.grow_count(), 1, "no reallocation once warm");
        assert_eq!(arena.capacity(), cap);
    }

    #[test]
    fn abc_layout_occupies_nothing() {
        let plan = FmmPlan::new(vec![strassen()]);
        let layout = ArenaLayout::for_core(Variant::Abc, &plan, 64, 64, 64);
        assert_eq!(layout.total_elements(), 0);
        let mut arena = WorkspaceArena::new();
        let views = arena.views(&layout);
        assert_eq!(views.mr.rows() * views.mr.cols(), 0);
        assert_eq!(arena.capacity(), 0);
        assert_eq!(arena.grow_count(), 0);
    }
}
