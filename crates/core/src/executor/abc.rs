//! The ABC variant: zero-workspace FMM (paper Fig. 1, right).
//!
//! For each product `r`, the operand linear combinations ride the packing
//! routines and the micro-kernel epilogue adds the register tile of `M_r`
//! into every destination `C_p` with coefficient `W[p, r]` — `M_r` never
//! exists in memory.
//!
//! Warm-path allocation contract: `fmm-check: contract(warm-alloc-free)`
//! (see README § Static analysis); the destination-tile list is the one
//! allowed exception, justified inline.

// fmm-check: contract(warm-alloc-free)

use super::common::{gather_terms, DestBlocks, OperandBlocks};
use super::GemmDispatch;
use crate::plan::FmmPlan;
use fmm_gemm::{DestTile, GemmScalar};

pub(super) fn run<T: GemmScalar>(
    plan: &FmmPlan,
    a_blocks: &OperandBlocks<'_, T>,
    b_blocks: &OperandBlocks<'_, T>,
    c_blocks: &DestBlocks<'_, T>,
    gemm: &mut GemmDispatch<'_, T>,
) {
    for r in 0..plan.rank() {
        let a_terms = gather_terms(plan.u(), r, a_blocks);
        let b_terms = gather_terms(plan.v(), r, b_blocks);
        let mut dests: Vec<DestTile<'_, T>> = plan
            .w()
            .col_nonzeros(r)
            // SAFETY: `col_nonzeros` yields strictly increasing distinct
            // block indices, and distinct blocks are disjoint regions of C.
            .map(|(p, w)| DestTile::new(unsafe { c_blocks.get(p) }, T::from_f64(w)))
            // fmm-check: allow(deny-alloc, reason = "per-product tile list bounded by plan nnz(W); fixed-capacity candidate if profiled hot")
            .collect();
        gemm.block_product(&mut dests, &a_terms, &b_terms, false);
    }
}

#[cfg(test)]
mod tests {
    use crate::executor::{fmm_execute, FmmContext, Variant};
    use crate::plan::FmmPlan;
    use crate::registry::{strassen, winograd};
    use fmm_dense::{fill, norms, Matrix};
    use fmm_gemm::BlockingParams;

    #[test]
    fn abc_accumulates_into_nonzero_c() {
        let plan = FmmPlan::new(vec![winograd()]);
        let a = fill::bench_workload(12, 12, 1);
        let b = fill::bench_workload(12, 12, 2);
        let mut c = Matrix::filled(12, 12, 3.0);
        let mut ctx = FmmContext::new(BlockingParams::tiny());
        fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Abc, &mut ctx);
        let mut c_ref = Matrix::filled(12, 12, 3.0);
        fmm_gemm::reference::matmul_into(c_ref.as_mut(), a.as_ref(), b.as_ref());
        assert!(norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < 1e-11);
    }

    #[test]
    fn abc_needs_no_temporaries() {
        let plan = FmmPlan::new(vec![strassen()]);
        let a = fill::bench_workload(8, 8, 1);
        let b = fill::bench_workload(8, 8, 2);
        let mut c = Matrix::zeros(8, 8);
        let mut ctx = FmmContext::new(BlockingParams::tiny());
        fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Abc, &mut ctx);
        // The Naive/AB temporaries were never allocated: the arena stayed
        // empty and the layout declares zero workspace.
        assert_eq!(ctx.fmm_workspace_elements(), 0);
        assert_eq!(ctx.arena_grow_count(), 0);
    }
}
