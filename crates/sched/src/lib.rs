//! `fmm-sched` — a task-parallel BFS/DFS/hybrid scheduler for FMM plans.
//!
//! The paper parallelizes only *inside* each block product (loop-3 data
//! parallelism around the GEMM micro-kernel, §5.1) — that is
//! [`Strategy::Dfs`], where the `R_L` submultiplications run strictly
//! sequentially. Benson & Ballard (*A Framework for Practical Parallel
//! Fast Matrix Multiplication*, PPoPP 2015) show that **task** parallelism
//! across the submultiplications dominates for small-to-medium problems,
//! where a single block product has too few micro-panel rows to feed every
//! core:
//!
//! * [`Strategy::Bfs`] fans all `R_L` products out as tasks over the
//!   worker pool. Each task computes its `M_r` into a task-private region
//!   carved from one grow-only workspace arena
//!   ([`fmm_core::executor::TaskSlots`]); a second parallel phase then
//!   merges `C_p += Σ_r W[p,r]·M_r`, one task per destination block (the
//!   blocks are disjoint, so the merge needs no synchronization).
//! * [`Strategy::Hybrid`] fans out only the `R_1` level-1 products and
//!   executes the remaining levels depth-first inside each task — the
//!   sweet spot when `R_L` tasks would be too fine-grained but one product
//!   is too coarse for data parallelism.
//!
//! Per-task GEMMs run the *sequential* driver with
//! [`BlockingParams::for_workers`]-shrunk panels, so task parallelism never
//! oversubscribes cores or the shared cache. All per-task state — the task
//! arena, a context-private packing-workspace pool, and the hybrid
//! strategy's inner DFS contexts — lives in a reusable [`SchedContext`],
//! whose [`SchedContext::grow_count`] stays flat once warm: the warm
//! scheduler path performs **zero** heap allocation for per-task
//! workspaces.
//!
//! # Example
//!
//! ```
//! use fmm_core::{registry, FmmPlan, Strategy, Variant};
//! use fmm_dense::{fill, Matrix};
//! use fmm_sched::SchedContext;
//!
//! let plan = FmmPlan::uniform(registry::strassen(), 2);
//! let a = fill::bench_workload(64, 64, 1);
//! let b = fill::bench_workload(64, 64, 2);
//! let mut c = Matrix::zeros(64, 64);
//! let mut ctx = SchedContext::with_defaults();
//! fmm_sched::execute(
//!     c.as_mut(), a.as_ref(), b.as_ref(),
//!     &plan, Variant::Abc, Strategy::Bfs, &mut ctx, 4,
//! );
//! let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
//! assert!(fmm_dense::norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9);
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]

use fmm_core::executor::{gather_terms, ArenaViews, DestBlocks, OperandBlocks, WorkspaceArena};
use fmm_core::{fmm_execute, fmm_execute_parallel, peeling, tasks, FmmContext, FmmPlan, Variant};
use fmm_dense::{ops, MatMut, MatRef};
use fmm_gemm::{BlockingParams, DestTile, GemmScalar, WorkspacePool};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

pub use fmm_core::tasks::Strategy;

/// Gauge counting workers currently inside a [`fan_out`] — the live
/// busy-worker view exported through the process-global obs registry.
fn busy_gauge() -> &'static Arc<fmm_obs::Gauge> {
    static G: OnceLock<Arc<fmm_obs::Gauge>> = OnceLock::new();
    G.get_or_init(|| fmm_obs::global().gauge("fmm_sched_workers_busy"))
}

/// Histogram of per-task execution time across both task strategies.
fn task_hist() -> &'static Arc<fmm_obs::Histogram> {
    static H: OnceLock<Arc<fmm_obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| fmm_obs::global().histogram("fmm_sched_task_nanos"))
}

/// Per-strategy execution counters in the process-global registry —
/// the scheduler-level view the decision audit's per-source counts are
/// checked against (e.g. "the audit says this class runs BFS; does the
/// scheduler agree?").
fn strategy_counter(strategy: Strategy) -> &'static Arc<fmm_obs::Counter> {
    static DFS: OnceLock<Arc<fmm_obs::Counter>> = OnceLock::new();
    static BFS: OnceLock<Arc<fmm_obs::Counter>> = OnceLock::new();
    static HYBRID: OnceLock<Arc<fmm_obs::Counter>> = OnceLock::new();
    match strategy {
        Strategy::Dfs => DFS.get_or_init(|| fmm_obs::global().counter("fmm_sched_exec_dfs")),
        Strategy::Bfs => BFS.get_or_init(|| fmm_obs::global().counter("fmm_sched_exec_bfs")),
        Strategy::Hybrid => {
            HYBRID.get_or_init(|| fmm_obs::global().counter("fmm_sched_exec_hybrid"))
        }
    }
}

/// Monotonic counters exposing the scheduler's behavior; snapshot via
/// [`SchedContext::stats`] and difference to assert warm-path properties.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// BFS core executions performed.
    pub bfs_executions: u64,
    /// Hybrid core executions performed (1-level plans delegate to BFS).
    pub hybrid_executions: u64,
    /// Submultiplication tasks fanned out across both task strategies.
    pub tasks_executed: u64,
    /// Inner DFS contexts constructed for hybrid tasks (flat once the
    /// context pool holds one per concurrently-active worker).
    pub inner_context_allocations: u64,
}

/// Reusable scheduler state: the DFS/rim execution context, the grow-only
/// per-task workspace arena, a context-private packing-workspace pool for
/// per-task GEMMs, and the hybrid strategy's pooled inner DFS contexts.
///
/// Like [`FmmContext`], a `SchedContext` reaches a steady state where
/// repeated executions perform no heap allocation — [`SchedContext::grow_count`]
/// aggregates every allocation source and stays flat once warm.
pub struct SchedContext<T = f64> {
    /// Blocking parameters for every GEMM the scheduler dispatches
    /// (per-task GEMMs shrink them via [`BlockingParams::for_workers`]).
    pub params: BlockingParams,
    fmm: FmmContext<T>,
    task_arena: WorkspaceArena<T>,
    packing_pool: WorkspacePool<T>,
    inner_ctxs: Mutex<Vec<FmmContext<T>>>,
    inner_allocations: AtomicU64,
    inner_arena_grows: AtomicU64,
    bfs_executions: AtomicU64,
    hybrid_executions: AtomicU64,
    tasks_executed: AtomicU64,
}

impl<T: GemmScalar> SchedContext<T> {
    /// Context with the default (paper §5.1) blocking parameters.
    pub fn with_defaults() -> Self {
        Self::new(BlockingParams::default())
    }

    /// Context with explicit blocking parameters. Everything starts empty;
    /// the first execution of a shape (or [`SchedContext::preplan`]) sizes it.
    pub fn new(params: BlockingParams) -> Self {
        Self {
            params,
            fmm: FmmContext::new(params),
            task_arena: WorkspaceArena::new(),
            packing_pool: WorkspacePool::new(),
            inner_ctxs: Mutex::new(Vec::new()),
            inner_allocations: AtomicU64::new(0),
            inner_arena_grows: AtomicU64::new(0),
            bfs_executions: AtomicU64::new(0),
            hybrid_executions: AtomicU64::new(0),
            tasks_executed: AtomicU64::new(0),
        }
    }

    /// The wrapped DFS execution context (what [`Strategy::Dfs`] and the
    /// engine's sequential path run on).
    pub fn fmm_context(&mut self) -> &mut FmmContext<T> {
        &mut self.fmm
    }

    /// Replace the blocking parameters on this context and its wrapped DFS
    /// context (e.g. worker-shrunk panels for batch execution). Packing
    /// workspaces never shrink, so flipping between parameter sets on a
    /// warm context does not reallocate.
    pub fn set_params(&mut self, params: BlockingParams) {
        self.params = params;
        self.fmm.params = params;
    }

    /// Scheduler behavior counters.
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            bfs_executions: self.bfs_executions.load(Ordering::Relaxed),
            hybrid_executions: self.hybrid_executions.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            inner_context_allocations: self.inner_allocations.load(Ordering::Relaxed),
        }
    }

    /// Aggregate allocation count across every workspace this context
    /// owns: the DFS arena, the per-task arena, the context-private
    /// packing pool, and the hybrid inner contexts (constructions and
    /// their arena growth). Flat once warm — the testable form of the
    /// "warm scheduler path allocates nothing" guarantee.
    pub fn grow_count(&self) -> u64 {
        self.fmm.arena_grow_count()
            + self.task_arena.grow_count()
            + self.packing_pool.allocation_count()
            + self.inner_allocations.load(Ordering::Relaxed)
            + self.inner_arena_grows.load(Ordering::Relaxed)
    }

    /// Size every workspace `(plan, variant, strategy)` needs for an
    /// `(m, k, n)` problem over `workers` workers, so the execution itself
    /// allocates nothing. Idempotent; never shrinks.
    #[allow(clippy::too_many_arguments)]
    pub fn preplan(
        &mut self,
        plan: &FmmPlan,
        variant: Variant,
        strategy: Strategy,
        workers: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        let workers = resolve_workers(workers);
        let (mc, kc, nc) = peeling::peel(m, k, n, plan.partition_dims()).core;
        match strategy {
            Strategy::Dfs => self.fmm.preplan(plan, variant, m, k, n),
            Strategy::Bfs => {
                let workers = workers.clamp(1, plan.rank());
                if mc > 0 && kc > 0 && nc > 0 {
                    let layout = tasks::bfs_task_layout(variant, plan, mc, kc, nc);
                    self.task_arena.preplan_tasks(&layout, plan.rank());
                }
                self.prewarm_packing(workers);
            }
            Strategy::Hybrid => {
                if plan.inner_plan().is_none() {
                    return self.preplan(plan, variant, Strategy::Bfs, workers, m, k, n);
                }
                let workers = workers.clamp(1, plan.first_level().rank());
                if mc > 0 && kc > 0 && nc > 0 {
                    let layout = tasks::hybrid_task_layout(plan, mc, kc, nc);
                    let r1 = plan.first_level().rank();
                    self.task_arena.preplan_tasks(&layout, r1);
                    self.prewarm_inner_contexts(plan, variant, workers, mc, kc, nc);
                }
            }
        }
    }

    /// Warm the packing pool with one workspace per worker (held
    /// simultaneously so the pool really ends up `workers` deep).
    fn prewarm_packing(&mut self, workers: usize) {
        let params = self.params.for_workers(workers);
        let held: Vec<_> = (0..workers).map(|_| self.packing_pool.acquire(&params)).collect();
        drop(held);
    }

    /// Warm the hybrid inner-context pool: one preplanned DFS context per
    /// worker, each sized for the level-1 block problem.
    fn prewarm_inner_contexts(
        &mut self,
        plan: &FmmPlan,
        variant: Variant,
        workers: usize,
        mc: usize,
        kc: usize,
        nc: usize,
    ) {
        let inner = plan.inner_plan().expect("hybrid prewarm needs a multi-level plan");
        let (m1, k1, n1) = plan.first_level().dims();
        let (bm, bk, bn) = (mc / m1, kc / k1, nc / n1);
        let task_params = self.params.for_workers(workers);
        let mut pool = self.inner_ctxs.lock();
        while pool.len() < workers {
            self.inner_allocations.fetch_add(1, Ordering::Relaxed);
            pool.push(FmmContext::new(task_params));
        }
        for ctx in pool.iter_mut() {
            let before = ctx.arena_grow_count();
            ctx.preplan(inner, variant, bm, bk, bn);
            self.inner_arena_grows.fetch_add(ctx.arena_grow_count() - before, Ordering::Relaxed);
        }
    }
}

impl<T: GemmScalar> std::fmt::Debug for SchedContext<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SchedContext(grows={}, stats={:?})", self.grow_count(), self.stats())
    }
}

// A scheduler context moves between engine callers like an `FmmContext`.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SchedContext<f64>>();
    assert_send_sync::<SchedContext<f32>>();
};

/// `0` means "use the rayon pool width"; explicit counts are clamped to
/// the pool width, since that is all the parallelism the fan-out can
/// actually realize — prewarming pools or shrinking cache panels beyond it
/// would pay for concurrency that never happens.
fn resolve_workers(workers: usize) -> usize {
    let pool = rayon::current_num_threads();
    if workers == 0 {
        pool
    } else {
        workers.min(pool).max(1)
    }
}

/// Self-scheduling fan-out: run `body` for every index in `0..tasks` over
/// at most `workers` workers, each with a private `init()` state. Workers
/// claim indices from a shared atomic counter, so load imbalance between
/// tasks (e.g. FMM products with different numbers of operand terms)
/// spreads evenly — unlike static chunking. Built on the rayon stand-in's
/// [`rayon::scope`]; effective parallelism is additionally bounded by the
/// rayon pool width.
pub fn fan_out<S, I, F>(tasks: usize, workers: usize, init: I, body: F)
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    if tasks == 0 {
        return;
    }
    let workers = resolve_workers(workers).clamp(1, tasks);
    let busy = busy_gauge();
    if workers == 1 {
        busy.add(1);
        let mut state = init();
        for i in 0..tasks {
            body(&mut state, i);
        }
        busy.sub(1);
        return;
    }
    let next = AtomicUsize::new(0);
    rayon::scope(|sc| {
        for _ in 0..workers {
            sc.spawn(|_| {
                busy.add(1);
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks {
                        break;
                    }
                    body(&mut state, i);
                }
                busy.sub(1);
            });
        }
    });
}

/// Execute `C += A·B` under `strategy` with `workers` workers (`0` = the
/// rayon pool width; explicit counts are clamped to it). Arbitrary
/// dimensions; fringes are handled by dynamic peeling exactly as in
/// [`fmm_core::fmm_execute`]. Returns the number of per-task
/// workspace-arena elements the core execution occupied (0 for DFS, which
/// uses the wrapped context's own arena).
///
/// DFS delegates to [`fmm_core::fmm_execute_parallel`]: block products
/// data-parallel over the *full* rayon pool (its `ic`-loop does not take a
/// worker bound), products sequential. BFS and hybrid fan tasks out as
/// described in the crate docs, with effective parallelism
/// `min(workers, tasks, pool width)`.
#[allow(clippy::too_many_arguments)]
pub fn execute<T: GemmScalar>(
    mut c: MatMut<'_, T>,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    plan: &FmmPlan,
    variant: Variant,
    strategy: Strategy,
    ctx: &mut SchedContext<T>,
    workers: usize,
) -> usize {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "A/B inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "C shape mismatch");

    if matches!(strategy, Strategy::Dfs) {
        strategy_counter(Strategy::Dfs).inc();
        fmm_execute_parallel(c, a, b, plan, variant, &mut ctx.fmm);
        return 0;
    }
    // Hybrid of a one-level plan has no inner levels to run depth-first;
    // it *is* BFS.
    let strategy = if matches!(strategy, Strategy::Hybrid) && plan.inner_plan().is_none() {
        Strategy::Bfs
    } else {
        strategy
    };
    // Counted after the downgrade: the counter reports what actually ran.
    strategy_counter(strategy).inc();

    let workers = resolve_workers(workers);
    let peel = peeling::peel(m, k, n, plan.partition_dims());
    let (mc, kc, nc) = peel.core;
    let mut occupied = 0;
    if mc > 0 && kc > 0 && nc > 0 {
        let a_core = a.submatrix(0, 0, mc, kc);
        let b_core = b.submatrix(0, 0, kc, nc);
        let c_core = c.reborrow().submatrix(0, 0, mc, nc);
        occupied = match strategy {
            Strategy::Bfs => bfs_core(ctx, c_core, a_core, b_core, plan, variant, workers),
            Strategy::Hybrid => hybrid_core(ctx, c_core, a_core, b_core, plan, variant, workers),
            Strategy::Dfs => unreachable!("handled above"),
        };
    }
    for rim in &peel.rims {
        let a_rim = a.submatrix(rim.rows.start, rim.inner.start, rim.rows.len(), rim.inner.len());
        let b_rim = b.submatrix(rim.inner.start, rim.cols.start, rim.inner.len(), rim.cols.len());
        let c_rim =
            c.reborrow().submatrix(rim.rows.start, rim.cols.start, rim.rows.len(), rim.cols.len());
        fmm_gemm::parallel::gemm_sums_parallel(
            &mut [DestTile::new(c_rim, T::ONE)],
            &[(T::ONE, a_rim)],
            &[(T::ONE, b_rim)],
            &ctx.params,
        );
    }
    occupied
}

/// BFS core: phase 1 computes every `M_r` task-parallel, phase 2 merges
/// them into the disjoint destination blocks, also task-parallel.
fn bfs_core<T: GemmScalar>(
    ctx: &mut SchedContext<T>,
    c: MatMut<'_, T>,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    plan: &FmmPlan,
    variant: Variant,
    workers: usize,
) -> usize {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    let rank = plan.rank();
    // No more workers than tasks: the surplus would get pools prewarmed
    // and panels shrunk for concurrency that cannot occur.
    let workers = workers.clamp(1, rank);
    let layout = tasks::bfs_task_layout(variant, plan, m, k, n);
    let a_blocks = OperandBlocks::new(a, plan.a_grid());
    let b_blocks = OperandBlocks::new(b, plan.b_grid());
    let c_blocks = DestBlocks::new(c, plan.c_grid());
    let task_params = ctx.params.for_workers(workers);
    // Fill the packing pool to `workers` depth up-front: self-scheduling
    // makes the number of *concurrently*-active workers vary per run, and
    // the warm path must stay allocation-free even when all workers
    // genuinely overlap for the first time.
    ctx.prewarm_packing(workers);

    // Split the context: the task arena is carved here (growing at most
    // once), the packing pool hands per-worker buffers to phase 1.
    let SchedContext { task_arena, packing_pool, bfs_executions, tasks_executed, .. } = ctx;
    let slots = task_arena.task_slots(&layout, rank);

    // Phase 1: each task overwrites its own M_r with the r-th product.
    fan_out(
        rank,
        workers,
        || packing_pool.acquire(&task_params),
        |ws, r| {
            // SAFETY: `fan_out` hands each index to exactly one worker, so
            // task regions are never aliased.
            let views = unsafe { slots.views(r) };
            let a_terms = gather_terms(plan.u(), r, &a_blocks);
            let b_terms = gather_terms(plan.v(), r, &b_blocks);
            let t0 = fmm_obs::trace::now_nanos();
            compute_product(views, variant, &a_terms, &b_terms, &task_params, ws);
            let t1 = fmm_obs::trace::now_nanos();
            task_hist().record(t1.saturating_sub(t0));
            if fmm_obs::trace::enabled() {
                fmm_obs::trace::record(fmm_obs::SpanEvent {
                    kind: fmm_obs::SpanKind::TaskExec,
                    request_id: fmm_obs::trace::current_request(),
                    start_nanos: t0,
                    end_nanos: t1,
                    thread: 0,
                });
            }
        },
    );

    // Phase 2: merge. Destination blocks are disjoint, so one task per
    // block; every task reads the now-immutable M_r regions.
    fan_out(
        c_blocks.len(),
        workers,
        || (),
        |(), p| {
            let span = fmm_obs::trace::start();
            // SAFETY: distinct p -> disjoint C blocks; phase 1 finished,
            // so the M_r reads cannot race a writer.
            let mut dest = unsafe { c_blocks.get(p) };
            for (r, w) in plan.w().row_nonzeros(p) {
                // SAFETY: phase 1 finished — every M_r slot is immutable.
                let mr = unsafe { slots.mr(r) };
                ops::axpy(dest.reborrow(), T::from_f64(w), mr).expect("block shapes agree");
            }
            fmm_obs::trace::finish(
                fmm_obs::SpanKind::Merge,
                fmm_obs::trace::current_request(),
                span,
            );
        },
    );

    bfs_executions.fetch_add(1, Ordering::Relaxed);
    tasks_executed.fetch_add(rank as u64, Ordering::Relaxed);
    slots.total_elements()
}

/// One BFS task: `M_r = (Σ uᵢAᵢ)(Σ vⱼBⱼ)` with the sequential driver.
/// AB/ABC fold the sums into packing; Naive materializes them first.
fn compute_product<T: GemmScalar>(
    views: ArenaViews<'_, T>,
    variant: Variant,
    a_terms: &[(T, MatRef<'_, T>)],
    b_terms: &[(T, MatRef<'_, T>)],
    params: &BlockingParams,
    ws: &mut fmm_gemm::PooledWorkspace<'_, T>,
) {
    let ArenaViews { mut ta, mut tb, mr } = views;
    match variant {
        Variant::Naive => {
            ops::linear_combination(ta.reborrow(), a_terms).expect("A block shapes agree");
            ops::linear_combination(tb.reborrow(), b_terms).expect("B block shapes agree");
            fmm_gemm::driver::gemm_sums_overwrite(
                &mut [DestTile::new(mr, T::ONE)],
                &[(T::ONE, ta.as_ref())],
                &[(T::ONE, tb.as_ref())],
                params,
                ws,
            );
        }
        Variant::Ab | Variant::Abc => {
            fmm_gemm::driver::gemm_sums_overwrite(
                &mut [DestTile::new(mr, T::ONE)],
                a_terms,
                b_terms,
                params,
                ws,
            );
        }
    }
}

/// A pooled inner DFS context for one hybrid worker; returns itself (and
/// its arena-growth delta) to the scheduler context on drop.
struct InnerCtx<'a, T: GemmScalar> {
    ctx: Option<FmmContext<T>>,
    grows_at_acquire: u64,
    pool: &'a Mutex<Vec<FmmContext<T>>>,
    arena_grows: &'a AtomicU64,
}

impl<'a, T: GemmScalar> InnerCtx<'a, T> {
    fn acquire(
        pool: &'a Mutex<Vec<FmmContext<T>>>,
        allocations: &AtomicU64,
        arena_grows: &'a AtomicU64,
        params: BlockingParams,
    ) -> Self {
        let ctx = match pool.lock().pop() {
            Some(mut ctx) => {
                ctx.params = params;
                ctx
            }
            None => {
                allocations.fetch_add(1, Ordering::Relaxed);
                FmmContext::new(params)
            }
        };
        let grows_at_acquire = ctx.arena_grow_count();
        Self { ctx: Some(ctx), grows_at_acquire, pool, arena_grows }
    }

    fn ctx(&mut self) -> &mut FmmContext<T> {
        self.ctx.as_mut().expect("present until drop")
    }
}

impl<T: GemmScalar> Drop for InnerCtx<'_, T> {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            self.arena_grows
                .fetch_add(ctx.arena_grow_count() - self.grows_at_acquire, Ordering::Relaxed);
            self.pool.lock().push(ctx);
        }
    }
}

/// Hybrid core: BFS over the `R_1` level-1 products; each task
/// materializes its level-1 operand sums and runs the remaining levels
/// depth-first on a pooled inner context.
fn hybrid_core<T: GemmScalar>(
    ctx: &mut SchedContext<T>,
    c: MatMut<'_, T>,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    plan: &FmmPlan,
    variant: Variant,
    workers: usize,
) -> usize {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    let outer = plan.first_level().clone();
    let inner = plan.inner_plan().expect("multi-level plan (1-level delegates to BFS)").clone();
    let r1 = outer.rank();
    // No more workers than level-1 tasks (see the comment in `bfs_core`).
    let workers = workers.clamp(1, r1);
    let layout = tasks::hybrid_task_layout(plan, m, k, n);
    let (a_grid, b_grid, c_grid) = tasks::level1_grids(plan);
    let a_blocks = OperandBlocks::new(a, &a_grid);
    let b_blocks = OperandBlocks::new(b, &b_grid);
    let c_blocks = DestBlocks::new(c, &c_grid);
    let task_params = ctx.params.for_workers(workers);
    // One fully-preplanned inner context per potential worker, up-front —
    // see the matching comment in `bfs_core`.
    ctx.prewarm_inner_contexts(plan, variant, workers, m, k, n);

    let SchedContext {
        task_arena,
        inner_ctxs,
        inner_allocations,
        inner_arena_grows,
        hybrid_executions,
        tasks_executed,
        ..
    } = ctx;
    let slots = task_arena.task_slots(&layout, r1);

    // Phase 1: level-1 products, DFS within each task.
    fan_out(
        r1,
        workers,
        || InnerCtx::acquire(inner_ctxs, inner_allocations, inner_arena_grows, task_params),
        |ictx, r| {
            // SAFETY: each task index is claimed by exactly one worker.
            let ArenaViews { mut ta, mut tb, mut mr } = unsafe { slots.views(r) };
            let a_terms = gather_terms(outer.u(), r, &a_blocks);
            let b_terms = gather_terms(outer.v(), r, &b_blocks);
            let t0 = fmm_obs::trace::now_nanos();
            ops::linear_combination(ta.reborrow(), &a_terms).expect("A block shapes agree");
            ops::linear_combination(tb.reborrow(), &b_terms).expect("B block shapes agree");
            // The executors accumulate; the task region is reused, so
            // clear M_r before descending.
            mr.fill(T::ZERO);
            fmm_execute(mr, ta.as_ref(), tb.as_ref(), &inner, variant, ictx.ctx());
            let t1 = fmm_obs::trace::now_nanos();
            task_hist().record(t1.saturating_sub(t0));
            if fmm_obs::trace::enabled() {
                fmm_obs::trace::record(fmm_obs::SpanEvent {
                    kind: fmm_obs::SpanKind::TaskExec,
                    request_id: fmm_obs::trace::current_request(),
                    start_nanos: t0,
                    end_nanos: t1,
                    thread: 0,
                });
            }
        },
    );

    // Phase 2: merge with the level-1 W coefficients.
    fan_out(
        c_blocks.len(),
        workers,
        || (),
        |(), p| {
            // SAFETY: distinct p -> disjoint C blocks; phase 1 finished.
            let mut dest = unsafe { c_blocks.get(p) };
            for (r, w) in outer.w().row_nonzeros(p) {
                // SAFETY: phase 1 finished — every M_r slot is immutable.
                let mr = unsafe { slots.mr(r) };
                ops::axpy(dest.reborrow(), T::from_f64(w), mr).expect("block shapes agree");
            }
        },
    );

    hybrid_executions.fetch_add(1, Ordering::Relaxed);
    tasks_executed.fetch_add(r1 as u64, Ordering::Relaxed);
    slots.total_elements()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_core::registry::strassen;
    use fmm_dense::{fill, norms, Matrix};

    fn check(
        m: usize,
        k: usize,
        n: usize,
        plan: &FmmPlan,
        variant: Variant,
        strategy: Strategy,
        workers: usize,
    ) {
        let a = fill::bench_workload(m, k, 1);
        let b = fill::bench_workload(k, n, 2);
        let mut c = fill::bench_workload(m, n, 3);
        let c_orig = c.clone();
        let mut ctx = SchedContext::new(BlockingParams::tiny());
        execute(c.as_mut(), a.as_ref(), b.as_ref(), plan, variant, strategy, &mut ctx, workers);
        let mut c_ref = c_orig;
        fmm_gemm::reference::matmul_into(c_ref.as_mut(), a.as_ref(), b.as_ref());
        let err = norms::max_abs_diff(c.as_ref(), c_ref.as_ref());
        let tol = norms::fmm_tolerance(k, plan.num_levels());
        assert!(
            err < tol,
            "{} {} {} m={m} k={k} n={n} workers={workers}: err={err} tol={tol}",
            plan.describe(),
            variant.name(),
            strategy.name()
        );
    }

    #[test]
    fn all_strategies_match_reference_one_level() {
        let plan = FmmPlan::new(vec![strassen()]);
        for strategy in Strategy::ALL {
            for variant in Variant::ALL {
                check(16, 16, 16, &plan, variant, strategy, 2);
                check(17, 19, 21, &plan, variant, strategy, 2); // fringes
            }
        }
    }

    #[test]
    fn all_strategies_match_reference_two_level() {
        let plan = FmmPlan::uniform(strassen(), 2);
        for strategy in Strategy::ALL {
            for variant in Variant::ALL {
                check(36, 36, 36, &plan, variant, strategy, 3);
            }
        }
    }

    #[test]
    fn problem_smaller_than_partition_falls_back_to_rims() {
        let plan = FmmPlan::uniform(strassen(), 2); // needs multiples of 4
        for strategy in [Strategy::Bfs, Strategy::Hybrid] {
            check(3, 3, 3, &plan, Variant::Abc, strategy, 2);
        }
    }

    #[test]
    fn bfs_accumulates_into_nonzero_c() {
        // The merge phase must add into C, not overwrite it.
        let plan = FmmPlan::new(vec![strassen()]);
        check(24, 24, 24, &plan, Variant::Ab, Strategy::Bfs, 2);
    }

    #[test]
    fn bfs_results_are_identical_across_worker_counts() {
        // Per-task products and the in-order merge make BFS deterministic:
        // the worker count must not change a single bit.
        let plan = FmmPlan::uniform(strassen(), 2);
        let (m, k, n) = (52, 44, 60);
        let a = fill::bench_workload(m, k, 5);
        let b = fill::bench_workload(k, n, 6);
        let mut reference = None;
        for workers in [1, 2, 4] {
            let mut c = Matrix::zeros(m, n);
            let mut ctx = SchedContext::new(BlockingParams::tiny());
            execute(
                c.as_mut(),
                a.as_ref(),
                b.as_ref(),
                &plan,
                Variant::Abc,
                Strategy::Bfs,
                &mut ctx,
                workers,
            );
            match &reference {
                None => reference = Some(c),
                Some(r) => assert_eq!(&c, r, "workers={workers}"),
            }
        }
    }

    #[test]
    fn hybrid_of_one_level_plan_delegates_to_bfs() {
        let plan = FmmPlan::new(vec![strassen()]);
        let a = fill::bench_workload(16, 16, 1);
        let b = fill::bench_workload(16, 16, 2);
        let mut c = Matrix::zeros(16, 16);
        let mut ctx = SchedContext::with_defaults();
        execute(
            c.as_mut(),
            a.as_ref(),
            b.as_ref(),
            &plan,
            Variant::Abc,
            Strategy::Hybrid,
            &mut ctx,
            2,
        );
        let stats = ctx.stats();
        assert_eq!(stats.bfs_executions, 1);
        assert_eq!(stats.hybrid_executions, 0);
        assert_eq!(stats.tasks_executed, 7);
    }

    #[test]
    fn fan_out_visits_each_index_once_with_worker_state() {
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        let inits = AtomicU64::new(0);
        fan_out(
            100,
            4,
            // Relaxed everywhere: `fan_out` joins its workers before
            // returning, so the loads below are ordered by the join.
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(inits.load(Ordering::Relaxed) <= 4, "at most one init per worker");
        fan_out(0, 4, || (), |(), _| panic!("no tasks, no calls"));
    }

    #[test]
    fn dfs_strategy_uses_the_wrapped_context() {
        let plan = FmmPlan::new(vec![strassen()]);
        let mut ctx = SchedContext::new(BlockingParams::tiny());
        let a = fill::bench_workload(16, 16, 1);
        let b = fill::bench_workload(16, 16, 2);
        let mut c = Matrix::zeros(16, 16);
        execute(
            c.as_mut(),
            a.as_ref(),
            b.as_ref(),
            &plan,
            Variant::Naive,
            Strategy::Dfs,
            &mut ctx,
            2,
        );
        assert!(ctx.fmm_context().fmm_workspace_elements() > 0, "DFS ran on the inner context");
        assert_eq!(ctx.stats().tasks_executed, 0, "DFS fans out no tasks");
    }
}
