//! Scheduler-level behavioral guarantees: every `(strategy, variant)`
//! combination matches the reference GEMM across odd shapes and worker
//! counts, and the warm BFS/hybrid paths perform zero heap allocation for
//! per-task workspaces.

use fmm_core::{registry, FmmPlan, Strategy, Variant};
use fmm_dense::{fill, norms, Matrix};
use fmm_gemm::BlockingParams;
use fmm_sched::{execute, SchedContext};

/// Let the rayon stand-in actually run several workers even on small CI
/// machines (the schedulers take an explicit worker count, but effective
/// parallelism is additionally bounded by the pool width). Correctness
/// must not depend on the pool width, so racing with `RAYON_NUM_THREADS`
/// overrides from the environment is fine.
fn widen_pool() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        if std::env::var("RAYON_NUM_THREADS").is_err() {
            rayon::ThreadPoolBuilder::new().num_threads(4).build_global().unwrap();
        }
    });
}

/// The satellite correctness sweep: `Dfs`/`Bfs`/`Hybrid` × all variants ×
/// odd shapes (exercising dynamic peeling) × worker counts 1/2/4 all match
/// the reference GEMM.
#[test]
fn strategy_variant_worker_sweep_matches_reference() {
    widen_pool();
    let one = FmmPlan::new(vec![registry::strassen()]);
    let two = FmmPlan::uniform(registry::strassen(), 2);
    let shapes: &[(usize, usize, usize)] = &[(37, 29, 41), (48, 48, 48), (33, 52, 21)];
    for (plan, levels) in [(&one, 1), (&two, 2)] {
        for &(m, k, n) in shapes {
            let a = fill::bench_workload(m, k, 1);
            let b = fill::bench_workload(k, n, 2);
            let mut c_ref = fill::bench_workload(m, n, 3);
            let c_init = c_ref.clone();
            fmm_gemm::reference::matmul_into(c_ref.as_mut(), a.as_ref(), b.as_ref());
            let tol = norms::fmm_tolerance(k, levels);
            for strategy in Strategy::ALL {
                for variant in Variant::ALL {
                    for workers in [1, 2, 4] {
                        let mut c = c_init.clone();
                        let mut ctx = SchedContext::new(BlockingParams::tiny());
                        execute(
                            c.as_mut(),
                            a.as_ref(),
                            b.as_ref(),
                            plan,
                            variant,
                            strategy,
                            &mut ctx,
                            workers,
                        );
                        let err = norms::max_abs_diff(c.as_ref(), c_ref.as_ref());
                        assert!(
                            err < tol,
                            "{} {} {} m={m} k={k} n={n} workers={workers}: err={err} tol={tol}",
                            plan.describe(),
                            variant.name(),
                            strategy.name(),
                        );
                    }
                }
            }
        }
    }
}

/// The warm BFS path performs zero heap allocation for per-task
/// workspaces: after the first execution of a shape, `grow_count` — which
/// aggregates the task arena, the packing pool, and every inner context —
/// stays flat.
#[test]
fn warm_bfs_path_allocates_no_task_workspaces() {
    widen_pool();
    let plan = FmmPlan::new(vec![registry::strassen()]);
    let (m, k, n) = (48, 48, 48);
    let a = fill::bench_workload(m, k, 1);
    let b = fill::bench_workload(k, n, 2);
    for variant in Variant::ALL {
        let mut ctx = SchedContext::new(BlockingParams::tiny());
        let mut c = Matrix::zeros(m, n);
        execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, variant, Strategy::Bfs, &mut ctx, 4);
        let cold = ctx.grow_count();
        assert!(cold > 0, "{}: the cold path sized the task workspaces", variant.name());
        for _ in 0..6 {
            let mut c = Matrix::zeros(m, n);
            execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, variant, Strategy::Bfs, &mut ctx, 4);
        }
        assert_eq!(
            ctx.grow_count(),
            cold,
            "{}: warm BFS executions allocate no workspaces",
            variant.name()
        );
        assert_eq!(ctx.stats().bfs_executions, 7, "{}", variant.name());
        assert_eq!(ctx.stats().tasks_executed, 7 * plan.rank() as u64, "{}", variant.name());
    }
}

/// Same guarantee for the hybrid path, including its pooled inner DFS
/// contexts.
#[test]
fn warm_hybrid_path_allocates_nothing() {
    widen_pool();
    let plan = FmmPlan::uniform(registry::strassen(), 2);
    let (m, k, n) = (52, 44, 60); // fringes included
    let a = fill::bench_workload(m, k, 1);
    let b = fill::bench_workload(k, n, 2);
    let mut ctx = SchedContext::new(BlockingParams::tiny());
    let mut c = Matrix::zeros(m, n);
    execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Ab, Strategy::Hybrid, &mut ctx, 4);
    let cold = ctx.grow_count();
    let cold_inner = ctx.stats().inner_context_allocations;
    assert!(cold_inner >= 1, "hybrid tasks used pooled inner contexts");
    for _ in 0..6 {
        let mut c = Matrix::zeros(m, n);
        execute(
            c.as_mut(),
            a.as_ref(),
            b.as_ref(),
            &plan,
            Variant::Ab,
            Strategy::Hybrid,
            &mut ctx,
            4,
        );
    }
    assert_eq!(ctx.grow_count(), cold, "warm hybrid executions allocate nothing");
    assert_eq!(ctx.stats().inner_context_allocations, cold_inner, "inner contexts pooled");
    assert_eq!(ctx.stats().hybrid_executions, 7);
}

/// `preplan` moves every allocation ahead of the first execution: a
/// preplanned context's first call is already warm.
#[test]
fn preplan_makes_the_first_execution_warm() {
    widen_pool();
    let plan = FmmPlan::uniform(registry::strassen(), 2);
    let (m, k, n) = (68, 68, 68);
    for strategy in Strategy::ALL {
        for variant in [Variant::Naive, Variant::Abc] {
            let mut ctx = SchedContext::new(BlockingParams::tiny());
            ctx.preplan(&plan, variant, strategy, 4, m, k, n);
            let planned = ctx.grow_count();
            let a = fill::bench_workload(m, k, 1);
            let b = fill::bench_workload(k, n, 2);
            let mut c = Matrix::zeros(m, n);
            execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, variant, strategy, &mut ctx, 4);
            assert_eq!(
                ctx.grow_count(),
                planned,
                "{} {}: preplanned first call allocates nothing",
                strategy.name(),
                variant.name()
            );
        }
    }
}
