//! Cache blocking parameters for the five-loop GEMM algorithm.

/// Register and cache blocking parameters `{mR, nR, kC, mC, nC}`.
///
/// The roles follow the GotoBLAS analysis reproduced in the paper (§2.1):
///
/// * `mr x nr` — the register tile of `C` the micro-kernel accumulates;
/// * `kc` — depth of a packed micro-panel: an `mr x kc` sliver of `A` and a
///   `kc x nr` sliver of `B` stay in L1;
/// * `mc x kc` — the packed block of `A` held in L2;
/// * `kc x nc` — the packed row panel of `B` held in L3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockingParams {
    /// Micro-tile rows (register blocking).
    pub mr: usize,
    /// Micro-tile columns (register blocking).
    pub nr: usize,
    /// L1/packing depth.
    pub kc: usize,
    /// Rows of the packed `A` block (L2).
    pub mc: usize,
    /// Columns of the packed `B` panel (L3).
    pub nc: usize,
}

/// Cache sizes in bytes, used by the analytic parameter derivation.
#[derive(Clone, Copy, Debug)]
pub struct CacheInfo {
    /// L1 data cache per core.
    pub l1d: usize,
    /// L2 cache per core.
    pub l2: usize,
    /// L3 cache (shared).
    pub l3: usize,
}

impl Default for BlockingParams {
    /// The parameters used throughout the paper's experiments
    /// (§5.1: `nR = 4, mR = 8, kC = 256, nC = 4096, mC = 96`).
    ///
    /// These were derived for a 32 KB L1 / 256 KB L2 / 25.6 MB L3 Ivy
    /// Bridge; they remain valid (conservative) on larger caches. Use
    /// [`BlockingParams::analytic`] to resize for a specific machine.
    fn default() -> Self {
        Self { mr: 8, nr: 4, kc: 256, mc: 96, nc: 4096 }
    }
}

impl BlockingParams {
    /// Derive parameters analytically from cache sizes, following
    /// Low et al., "Analytical modeling is enough for high performance BLIS"
    /// (paper ref. [7]), with the paper's `mr = 8, nr = 4` register tile.
    ///
    /// * `kc`: an `mr x kc` panel of `A` plus a `kc x nr` panel of `B`
    ///   occupy at most half of L1;
    /// * `mc`: the packed `mc x kc` block of `A` occupies at most half of L2;
    /// * `nc`: the packed `kc x nc` panel of `B` occupies at most half of L3.
    ///
    /// Each value is rounded down to a multiple of the register tile and
    /// floored at one tile.
    pub fn analytic(cache: CacheInfo) -> Self {
        const W: usize = std::mem::size_of::<f64>();
        let mr = 8;
        let nr = 4;
        let kc = (cache.l1d / 2 / W / (mr + nr)).max(8);
        let mc_raw = (cache.l2 / 2 / W / kc).max(mr);
        let mc = (mc_raw / mr).max(1) * mr;
        let nc_raw = (cache.l3 / 2 / W / kc).max(nr);
        let nc = (nc_raw / nr).max(1) * nr;
        Self { mr, nr, kc, mc, nc }
    }

    /// Size in elements of the packed `A` block buffer (`mc x kc`, with the
    /// row count rounded up to whole micro-panels).
    pub fn packed_a_len(&self) -> usize {
        self.mc.div_ceil(self.mr) * self.mr * self.kc
    }

    /// Size in elements of the packed `B` panel buffer (`kc x nc`, with the
    /// column count rounded up to whole micro-panels).
    pub fn packed_b_len(&self) -> usize {
        self.nc.div_ceil(self.nr) * self.nr * self.kc
    }

    /// Validate internal consistency (non-zero tiles, `mc` a multiple of
    /// `mr` is *not* required, but everything must be positive).
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in
            [("mr", self.mr), ("nr", self.nr), ("kc", self.kc), ("mc", self.mc), ("nc", self.nc)]
        {
            if v == 0 {
                return Err(format!("blocking parameter {name} must be positive"));
            }
        }
        if self.mc < self.mr {
            return Err("mc must be at least mr".into());
        }
        if self.nc < self.nr {
            return Err("nc must be at least nr".into());
        }
        Ok(())
    }

    /// A small-parameter set for tests: exercises every edge case (partial
    /// panels, multiple jc/pc/ic iterations) on matrices of modest size.
    pub fn tiny() -> Self {
        Self { mr: 8, nr: 4, kc: 8, mc: 16, nc: 12 }
    }

    /// The same cache blocking with the register tile replaced — the
    /// generic driver derives the effective parameter set for a scalar
    /// type from its kernel's `MR x NR` tile (e.g. `16 x 4` for `f32`),
    /// keeping every cache-level parameter as configured. Sizing and
    /// packing always go through this, so one `BlockingParams` value can
    /// serve every dtype.
    pub fn with_register_tile(&self, mr: usize, nr: usize) -> Self {
        Self { mr, nr, mc: self.mc.max(mr), nc: self.nc.max(nr), ..*self }
    }

    /// Parameters for one of `workers` *co-resident* GEMM instances — the
    /// BFS scheduler's situation, where every worker packs its own `B̃`
    /// panel at the same time.
    ///
    /// `nc` sizes the packed `B` panel against the *shared* L3, so it is
    /// divided across workers (rounded to whole `nr` micro-panels, floored
    /// at one) to keep the aggregate packed footprint within the budget a
    /// single instance was tuned for. The register tile, `kc` (L1) and
    /// `mc` (per-core L2) are private resources and stay unchanged.
    pub fn for_workers(&self, workers: usize) -> Self {
        if workers <= 1 {
            return *self;
        }
        let nc = ((self.nc / workers).max(self.nr) / self.nr) * self.nr;
        Self { nc, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_section_5_1() {
        let p = BlockingParams::default();
        assert_eq!((p.mr, p.nr, p.kc, p.mc, p.nc), (8, 4, 256, 96, 4096));
    }

    #[test]
    fn analytic_for_paper_machine_is_close_to_paper_values() {
        // Ivy Bridge: 32 KB L1d, 256 KB L2, 25.6 MB L3.
        let p = BlockingParams::analytic(CacheInfo {
            l1d: 32 * 1024,
            l2: 256 * 1024,
            l3: 25 * 1024 * 1024 + 614 * 1024,
        });
        assert_eq!(p.mr, 8);
        assert_eq!(p.nr, 4);
        // kc: 16KB / 8B / 12 = 170; same order as the paper's 256.
        assert!(p.kc >= 128 && p.kc <= 256, "kc = {}", p.kc);
        // mc: 128KB / 8B / kc, multiple of mr; paper uses 96.
        assert!(p.mc >= 64 && p.mc <= 128, "mc = {}", p.mc);
        assert!(p.nc >= 2048, "nc = {}", p.nc);
        p.validate().unwrap();
    }

    #[test]
    fn packed_lengths_cover_partial_panels() {
        let p = BlockingParams { mr: 8, nr: 4, kc: 10, mc: 12, nc: 6 };
        // 12 rows -> 2 panels of 8 rows.
        assert_eq!(p.packed_a_len(), 2 * 8 * 10);
        // 6 cols -> 2 panels of 4 cols.
        assert_eq!(p.packed_b_len(), 2 * 4 * 10);
    }

    #[test]
    fn for_workers_divides_the_shared_panel() {
        let p = BlockingParams::default();
        assert_eq!(p.for_workers(1), p, "single worker keeps the tuned panel");
        let q = p.for_workers(4);
        assert_eq!(q.nc, 1024, "L3 panel split four ways");
        assert_eq!((q.mr, q.nr, q.kc, q.mc), (p.mr, p.nr, p.kc, p.mc), "private resources kept");
        q.validate().unwrap();
        // Extreme worker counts still yield at least one micro-panel.
        let tiny = BlockingParams::tiny().for_workers(64);
        assert_eq!(tiny.nc, tiny.nr);
        tiny.validate().unwrap();
    }

    #[test]
    fn validate_rejects_zero_and_undersized() {
        assert!(BlockingParams { mr: 0, nr: 4, kc: 1, mc: 1, nc: 4 }.validate().is_err());
        assert!(BlockingParams { mr: 8, nr: 4, kc: 16, mc: 4, nc: 16 }.validate().is_err());
        assert!(BlockingParams { mr: 8, nr: 4, kc: 16, mc: 8, nc: 2 }.validate().is_err());
        BlockingParams::tiny().validate().unwrap();
        BlockingParams::default().validate().unwrap();
    }
}
