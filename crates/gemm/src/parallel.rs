//! Data-parallel GEMM: the third loop around the micro-kernel (the `ic`
//! loop) is distributed over rayon workers, mirroring the paper's OpenMP
//! scheme (§5.1, citing Smith et al. IPDPS'14).
//!
//! Each worker packs its own `Ã_i` block (private, lives in that core's L2)
//! while all workers share the packed `B̃_p` panel (lives in L3) — exactly
//! the sharing pattern BLIS uses. Workers write disjoint row ranges
//! `[ic, ic + mc)` of every destination, so no synchronization on `C` is
//! needed beyond the loop barrier.

use crate::driver::{check_shapes, macro_kernel, DestTile, RawDest};
use crate::kernel::GemmScalar;
use crate::pack;
use crate::params::BlockingParams;
use fmm_dense::MatRef;
use rayon::prelude::*;

/// Parallel generalized GEMM: `C_d += w_d * (sum A_i)(sum B_j)` for every
/// destination, with the `ic` loop parallelized over the current rayon pool.
pub fn gemm_sums_parallel<T: GemmScalar>(
    dests: &mut [DestTile<'_, T>],
    a_terms: &[(T, MatRef<'_, T>)],
    b_terms: &[(T, MatRef<'_, T>)],
    params: &BlockingParams,
) {
    gemm_sums_parallel_impl(dests, a_terms, b_terms, params, false)
}

/// Parallel variant of [`crate::driver::gemm_sums_overwrite`].
pub fn gemm_sums_parallel_overwrite<T: GemmScalar>(
    dests: &mut [DestTile<'_, T>],
    a_terms: &[(T, MatRef<'_, T>)],
    b_terms: &[(T, MatRef<'_, T>)],
    params: &BlockingParams,
) {
    gemm_sums_parallel_impl(dests, a_terms, b_terms, params, true)
}

fn gemm_sums_parallel_impl<T: GemmScalar>(
    dests: &mut [DestTile<'_, T>],
    a_terms: &[(T, MatRef<'_, T>)],
    b_terms: &[(T, MatRef<'_, T>)],
    params: &BlockingParams,
    overwrite: bool,
) {
    let (m, k, n) = check_shapes(dests, a_terms, b_terms);
    // As in the sequential driver: pack for `T`'s kernel tile.
    let params = &params.with_register_tile(T::MR, T::NR);
    params.validate().expect("invalid blocking parameters");
    if m == 0 || n == 0 {
        return;
    }
    let raw: Vec<RawDest<T>> = dests.iter_mut().map(|d| d.raw()).collect();
    if k == 0 {
        if overwrite {
            // Zero all destinations (k = 0 product is the zero matrix).
            for d in raw {
                for j in 0..d.cols {
                    for i in 0..d.rows {
                        // SAFETY: (i, j) in bounds; single-threaded here.
                        unsafe { *d.ptr.offset(i as isize * d.rs + j as isize * d.cs) = T::ZERO };
                    }
                }
            }
        }
        return;
    }
    let ukr = T::micro_kernel();
    let n_ic_blocks = m.div_ceil(params.mc);

    // Shared B̃ panel, packed once per (jc, pc) iteration. Pooled (one pool
    // per dtype), so the warm path allocates nothing.
    let mut bws = T::global_pool().acquire(params);
    let bbuf = &mut bws.bbuf;

    let mut jc = 0;
    while jc < n {
        let nb = params.nc.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kb = params.kc.min(k - pc);
            let b_slices: Vec<(T, MatRef<'_, T>)> =
                b_terms.iter().map(|(g, b)| (*g, b.submatrix(pc, jc, kb, nb))).collect();
            let t_pack = crate::obs_hooks::phase_start();
            pack::pack_b_sum(bbuf, &b_slices, params.nr);
            crate::obs_hooks::pack_done(t_pack);
            let store = overwrite && pc == 0;
            let bshared: &[T] = bbuf;

            (0..n_ic_blocks).into_par_iter().for_each_init(
                // Per-worker packing buffers come from the global pool,
                // so steady-state parallel GEMM allocates nothing.
                || T::global_pool().acquire(params),
                |ws, blk| {
                    let ic = blk * params.mc;
                    let mb = params.mc.min(m - ic);
                    let a_slices: Vec<(T, MatRef<'_, T>)> =
                        a_terms.iter().map(|(g, a)| (*g, a.submatrix(ic, pc, mb, kb))).collect();
                    let t_pack = crate::obs_hooks::phase_start();
                    pack::pack_a_sum(&mut ws.abuf, &a_slices, params.mr);
                    crate::obs_hooks::pack_done(t_pack);
                    // Each task owns rows [ic, ic + mb) of every
                    // destination; tasks are disjoint in `ic`, so the
                    // writes through RawDest cannot race.
                    let mut local = raw.clone();
                    let t_kernel = crate::obs_hooks::phase_start();
                    macro_kernel(&mut local, &ws.abuf, bshared, ic, jc, mb, nb, kb, ukr, store);
                    crate::obs_hooks::kernel_done(t_kernel);
                },
            );
            pc += params.kc;
        }
        jc += params.nc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::gemm_sums;
    use crate::reference;
    use crate::workspace::GemmWorkspace;
    use fmm_dense::{fill, norms, Matrix};

    #[test]
    fn parallel_matches_sequential_driver() {
        let p = BlockingParams::tiny();
        for (m, k, n) in [(64, 32, 48), (33, 17, 29), (100, 7, 3)] {
            let a = fill::bench_workload(m, k, 1);
            let b = fill::bench_workload(k, n, 2);
            let mut c_par = fill::bench_workload(m, n, 3);
            let mut c_seq = c_par.clone();

            gemm_sums_parallel(
                &mut [DestTile::new(c_par.as_mut(), 1.0)],
                &[(1.0, a.as_ref())],
                &[(1.0, b.as_ref())],
                &p,
            );
            let mut ws = GemmWorkspace::for_params(&p);
            gemm_sums(
                &mut [DestTile::new(c_seq.as_mut(), 1.0)],
                &[(1.0, a.as_ref())],
                &[(1.0, b.as_ref())],
                &p,
                &mut ws,
            );
            // Same packing, same kernel, same summation order per element:
            // results are bit-identical.
            assert_eq!(c_par, c_seq, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn parallel_multi_dest_and_sums() {
        let p = BlockingParams::tiny();
        let m = 48;
        let k = 20;
        let n = 36;
        let a0 = fill::bench_workload(m, k, 4);
        let a1 = fill::bench_workload(m, k, 5);
        let b0 = fill::bench_workload(k, n, 6);
        let mut c0 = Matrix::zeros(m, n);
        let mut c1 = Matrix::zeros(m, n);
        gemm_sums_parallel(
            &mut [DestTile::new(c0.as_mut(), 2.0), DestTile::new(c1.as_mut(), -1.0)],
            &[(1.0, a0.as_ref()), (-1.0, a1.as_ref())],
            &[(1.0, b0.as_ref())],
            &p,
        );
        let mut asum = Matrix::zeros(m, k);
        fmm_dense::ops::linear_combination(
            asum.as_mut(),
            &[(1.0, a0.as_ref()), (-1.0, a1.as_ref())],
        )
        .unwrap();
        let prod = reference::matmul(asum.as_ref(), b0.as_ref());
        for j in 0..n {
            for i in 0..m {
                assert!((c0.get(i, j) - 2.0 * prod.get(i, j)).abs() < 1e-12);
                assert!((c1.get(i, j) + prod.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn parallel_overwrite_semantics() {
        let p = BlockingParams::tiny();
        let a = fill::bench_workload(24, 25, 7);
        let b = fill::bench_workload(25, 16, 8);
        let mut c = Matrix::filled(24, 16, 55.0);
        gemm_sums_parallel_overwrite(
            &mut [DestTile::new(c.as_mut(), 1.0)],
            &[(1.0, a.as_ref())],
            &[(1.0, b.as_ref())],
            &p,
        );
        let c_ref = reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < 1e-12);
    }

    #[test]
    fn gemm_parallel_entry_point() {
        let a = fill::bench_workload(70, 30, 9);
        let b = fill::bench_workload(30, 50, 10);
        let mut c = Matrix::zeros(70, 50);
        crate::gemm_parallel(c.as_mut(), a.as_ref(), b.as_ref());
        let c_ref = reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < 1e-11);
    }
}
