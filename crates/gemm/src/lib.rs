//! BLIS / GotoBLAS-style blocked matrix multiplication substrate.
//!
//! This crate reimplements the GEMM structure of Figure 1 (left) of the
//! reproduced paper — the five loops around a register-blocked micro-kernel,
//! with `A` packed into `mC x kC` blocks of `mR`-row micro-panels and `B`
//! packed into `kC x nC` row panels of `nR`-column micro-panels — plus the
//! two generalizations of Figure 1 (right) that make Strassen-like fast
//! matrix multiplication practical:
//!
//! * **packing with linear combinations** ([`pack::pack_a_sum`],
//!   [`pack::pack_b_sum`]): the packed buffer receives `sum_i gamma_i * X_i`
//!   of several same-shape submatrices, at no extra memory traffic;
//! * **multi-destination micro-kernel epilogue** ([`driver::gemm_sums`]):
//!   the register tile is scattered with per-destination coefficients into
//!   several submatrices of `C`, avoiding temporaries for the intermediate
//!   products `M_r`.
//!
//! Plain GEMM ([`gemm`], [`gemm_parallel`]) is the special case with one term
//! per operand and one destination; the FMM executors in `fmm-core` invoke
//! the general driver directly.
//!
//! The whole substrate is generic over the packed element type through
//! [`kernel::GemmScalar`] (`f64` default, `f32` supported): the trait owns
//! the register tile (`8x4` doubles, `16x4` singles — same eight 256-bit
//! accumulators, double the lanes), the runtime-selected micro-kernel, and
//! a per-dtype global packing pool. Callers pass one `BlockingParams`; the
//! driver swaps in the kernel's register tile via
//! [`BlockingParams::with_register_tile`] while keeping the cache-level
//! blocking as configured.
//!
//! Parallelism mirrors the paper's OpenMP scheme: the third loop around the
//! micro-kernel (the `ic` loop) is data-parallel over rayon worker threads.
//!
//! # Example
//!
//! ```
//! use fmm_dense::{fill, Matrix, norms};
//!
//! let a = fill::bench_workload(64, 48, 1);
//! let b = fill::bench_workload(48, 80, 2);
//! let mut c = Matrix::zeros(64, 80);
//! fmm_gemm::gemm(c.as_mut(), a.as_ref(), b.as_ref());
//!
//! let mut c_ref = Matrix::zeros(64, 80);
//! fmm_gemm::reference::matmul_into(c_ref.as_mut(), a.as_ref(), b.as_ref());
//! assert!(fmm_dense::norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < 1e-12);
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]

pub mod driver;
pub mod kernel;
mod obs_hooks;
pub mod pack;
pub mod parallel;
pub mod params;
pub mod reference;
pub mod workspace;

pub use driver::{gemm_sums, DestTile};
pub use kernel::{GemmScalar, MicroKernelFn};
pub use params::BlockingParams;
pub use workspace::{GemmWorkspace, PooledWorkspace, WorkspacePool};

use fmm_dense::{MatMut, MatRef};

/// `C += A * B`, sequential, with default blocking parameters, generic
/// over the [`GemmScalar`] element (`f64` or `f32`). Packing buffers come
/// from the dtype's global [`WorkspacePool`], so repeated calls do not
/// allocate.
pub fn gemm<T: GemmScalar>(c: MatMut<'_, T>, a: MatRef<'_, T>, b: MatRef<'_, T>) {
    gemm_with_params(c, a, b, &BlockingParams::default())
}

/// As [`gemm`], with explicit blocking parameters — e.g.
/// [`BlockingParams::for_workers`]-shrunk panels when several sequential
/// GEMMs run co-resident on one shared cache.
pub fn gemm_with_params<T: GemmScalar>(
    c: MatMut<'_, T>,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    params: &BlockingParams,
) {
    let mut ws = T::global_pool().acquire(params);
    driver::gemm_sums(
        &mut [DestTile::new(c, T::ONE)],
        &[(T::ONE, a)],
        &[(T::ONE, b)],
        params,
        &mut ws,
    );
}

/// `C += A * B`, parallel over the `ic` loop using the global rayon pool.
pub fn gemm_parallel<T: GemmScalar>(c: MatMut<'_, T>, a: MatRef<'_, T>, b: MatRef<'_, T>) {
    let params = BlockingParams::default();
    parallel::gemm_sums_parallel(
        &mut [DestTile::new(c, T::ONE)],
        &[(T::ONE, a)],
        &[(T::ONE, b)],
        &params,
    );
}
