//! AVX2 + FMA micro-kernel for x86-64.
//!
//! Eight 256-bit accumulators hold the 8x4 `f64` tile (two vectors per
//! column); each depth step costs two aligned loads of Ã, four broadcasts of
//! B̃, and eight FMAs — the same register choreography as the hand-coded
//! BLIS kernel the paper builds on.

#![cfg(target_arch = "x86_64")]

use super::{Acc, MR, NR};
use std::arch::x86_64::*;

/// Safe-ABI entry point that dispatches into the `target_feature` kernel.
///
/// # Safety
/// `a` points to `kc * MR` readable elements, `b` to `kc * NR`. The caller
/// must only use this after confirming AVX2 and FMA support (the crate's
/// [`super::select`] does so).
pub unsafe fn kernel_8x4_avx2_entry(kc: usize, a: *const f64, b: *const f64, acc: &mut Acc) {
    // SAFETY: forwarded contract; the caller guarantees operand bounds and
    // AVX2 + FMA availability.
    unsafe { kernel_8x4_avx2(kc, a, b, acc) }
}

/// # Safety
/// Same contract as [`kernel_8x4_avx2_entry`]: `a` points to `kc * MR`
/// readable elements, `b` to `kc * NR`, and AVX2 + FMA must be available.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn kernel_8x4_avx2(kc: usize, a: *const f64, b: *const f64, acc: &mut Acc) {
    debug_assert_eq!(MR, 8);
    debug_assert_eq!(NR, 4);
    // SAFETY: intrinsics require AVX2 + FMA (caller's contract); all pointer
    // reads stay within the `kc * MR` / `kc * NR` packed panels and the
    // MR*NR accumulator, per the documented bounds.
    unsafe {
        let mut c00 = _mm256_setzero_pd(); // rows 0..4 of column 0
        let mut c10 = _mm256_setzero_pd(); // rows 4..8 of column 0
        let mut c01 = _mm256_setzero_pd();
        let mut c11 = _mm256_setzero_pd();
        let mut c02 = _mm256_setzero_pd();
        let mut c12 = _mm256_setzero_pd();
        let mut c03 = _mm256_setzero_pd();
        let mut c13 = _mm256_setzero_pd();

        let mut ap = a;
        let mut bp = b;
        for _ in 0..kc {
            let a0 = _mm256_loadu_pd(ap);
            let a1 = _mm256_loadu_pd(ap.add(4));
            let b0 = _mm256_broadcast_sd(&*bp);
            c00 = _mm256_fmadd_pd(a0, b0, c00);
            c10 = _mm256_fmadd_pd(a1, b0, c10);
            let b1 = _mm256_broadcast_sd(&*bp.add(1));
            c01 = _mm256_fmadd_pd(a0, b1, c01);
            c11 = _mm256_fmadd_pd(a1, b1, c11);
            let b2 = _mm256_broadcast_sd(&*bp.add(2));
            c02 = _mm256_fmadd_pd(a0, b2, c02);
            c12 = _mm256_fmadd_pd(a1, b2, c12);
            let b3 = _mm256_broadcast_sd(&*bp.add(3));
            c03 = _mm256_fmadd_pd(a0, b3, c03);
            c13 = _mm256_fmadd_pd(a1, b3, c13);
            ap = ap.add(MR);
            bp = bp.add(NR);
        }

        let p = acc.as_mut_ptr();
        add_store(p, c00);
        add_store(p.add(4), c10);
        add_store(p.add(8), c01);
        add_store(p.add(12), c11);
        add_store(p.add(16), c02);
        add_store(p.add(20), c12);
        add_store(p.add(24), c03);
        add_store(p.add(28), c13);
    }
}

/// # Safety
/// `dst` points to 4 readable+writable `f64`s; AVX2 must be available.
#[target_feature(enable = "avx2")]
unsafe fn add_store(dst: *mut f64, v: __m256d) {
    // SAFETY: `dst` covers 4 readable+writable f64s and AVX2 is available,
    // per the caller's contract.
    unsafe {
        let cur = _mm256_loadu_pd(dst);
        _mm256_storeu_pd(dst, _mm256_add_pd(cur, v));
    }
}
