//! AVX-512 micro-kernel for x86-64.
//!
//! Same 8x4 tile and packed-panel format as the AVX2 kernel, but each
//! 8-row column of the accumulator is a single `zmm` register: four
//! accumulators, one full-column load of Ã and four broadcasts of B̃ per
//! depth step — half the FMA instructions of the AVX2 version.
//!
//! Selected only when `avx512f` is detected; set `FMM_NO_AVX512=1` to fall
//! back (older Xeons downclock under heavy 512-bit use, so measuring both
//! is worthwhile — see the `microkernel` criterion group).

#![cfg(target_arch = "x86_64")]

use super::{Acc, MR, NR};
use std::arch::x86_64::*;

/// Safe-ABI entry point dispatching into the `target_feature` kernel.
///
/// # Safety
/// `a` points to `kc * MR` readable elements, `b` to `kc * NR`. Caller must
/// have confirmed AVX-512F support.
pub unsafe fn kernel_8x4_avx512_entry(kc: usize, a: *const f64, b: *const f64, acc: &mut Acc) {
    // SAFETY: forwarded contract; the caller guarantees operand bounds and
    // AVX-512F availability.
    unsafe { kernel_8x4_avx512(kc, a, b, acc) }
}

/// # Safety
/// Same contract as [`kernel_8x4_avx512_entry`]: `a` points to `kc * MR`
/// readable elements, `b` to `kc * NR`, and AVX-512F must be available.
#[target_feature(enable = "avx512f")]
unsafe fn kernel_8x4_avx512(kc: usize, a: *const f64, b: *const f64, acc: &mut Acc) {
    debug_assert_eq!(MR, 8);
    debug_assert_eq!(NR, 4);
    // SAFETY: intrinsics require AVX-512F (caller's contract); all pointer
    // reads stay within the `kc * MR` / `kc * NR` packed panels and the
    // MR*NR accumulator, per the documented bounds.
    unsafe {
        let mut c0 = _mm512_setzero_pd(); // rows 0..8 of column 0
        let mut c1 = _mm512_setzero_pd();
        let mut c2 = _mm512_setzero_pd();
        let mut c3 = _mm512_setzero_pd();

        let mut ap = a;
        let mut bp = b;
        // Two-way unroll over the depth loop: cheap and hides broadcast latency.
        let pairs = kc / 2;
        for _ in 0..pairs {
            let a0 = _mm512_loadu_pd(ap);
            c0 = _mm512_fmadd_pd(a0, _mm512_set1_pd(*bp), c0);
            c1 = _mm512_fmadd_pd(a0, _mm512_set1_pd(*bp.add(1)), c1);
            c2 = _mm512_fmadd_pd(a0, _mm512_set1_pd(*bp.add(2)), c2);
            c3 = _mm512_fmadd_pd(a0, _mm512_set1_pd(*bp.add(3)), c3);
            let a1 = _mm512_loadu_pd(ap.add(MR));
            c0 = _mm512_fmadd_pd(a1, _mm512_set1_pd(*bp.add(NR)), c0);
            c1 = _mm512_fmadd_pd(a1, _mm512_set1_pd(*bp.add(NR + 1)), c1);
            c2 = _mm512_fmadd_pd(a1, _mm512_set1_pd(*bp.add(NR + 2)), c2);
            c3 = _mm512_fmadd_pd(a1, _mm512_set1_pd(*bp.add(NR + 3)), c3);
            ap = ap.add(2 * MR);
            bp = bp.add(2 * NR);
        }
        if kc % 2 == 1 {
            let a0 = _mm512_loadu_pd(ap);
            c0 = _mm512_fmadd_pd(a0, _mm512_set1_pd(*bp), c0);
            c1 = _mm512_fmadd_pd(a0, _mm512_set1_pd(*bp.add(1)), c1);
            c2 = _mm512_fmadd_pd(a0, _mm512_set1_pd(*bp.add(2)), c2);
            c3 = _mm512_fmadd_pd(a0, _mm512_set1_pd(*bp.add(3)), c3);
        }

        let p = acc.as_mut_ptr();
        add_store(p, c0);
        add_store(p.add(8), c1);
        add_store(p.add(16), c2);
        add_store(p.add(24), c3);
    }
}

/// # Safety
/// `dst` points to 8 readable+writable `f64`s; AVX-512F must be available.
#[target_feature(enable = "avx512f")]
unsafe fn add_store(dst: *mut f64, v: __m512d) {
    // SAFETY: `dst` covers 8 readable+writable f64s and AVX-512F is
    // available, per the caller's contract.
    unsafe {
        let cur = _mm512_loadu_pd(dst);
        _mm512_storeu_pd(dst, _mm512_add_pd(cur, v));
    }
}
