//! AVX2 + FMA single-precision micro-kernel for x86-64.
//!
//! The `f32` register tile is `16 x 4`: eight 256-bit accumulators hold the
//! tile (two `__m256` vectors of 8 lanes per column), the same accumulator
//! count as the `f64` 8x4 kernel — the tile simply doubles its rows with the
//! doubled lane width. Each depth step costs two aligned loads of Ã, four
//! broadcasts of B̃, and eight FMAs.

#![cfg(target_arch = "x86_64")]

use super::{MR_F32, NR_F32};
use std::arch::x86_64::*;

/// Safe-ABI entry point that dispatches into the `target_feature` kernel.
///
/// # Safety
/// `a` points to `kc * 16` readable `f32` elements (a packed A micro-panel),
/// `b` to `kc * 4`, and `acc` to a writable `16 x 4` column-major tile. The
/// caller must only use this after confirming AVX2 and FMA support (the
/// crate's [`super::select_f32`] does so).
pub unsafe fn kernel_16x4_avx2_f32_entry(kc: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    // SAFETY: forwarded contract; the caller guarantees operand bounds and
    // AVX2 + FMA availability.
    unsafe { kernel_16x4_avx2_f32(kc, a, b, acc) }
}

/// # Safety
/// Same contract as [`kernel_16x4_avx2_f32_entry`]: `a` points to
/// `kc * MR_F32` readable elements, `b` to `kc * NR_F32`, `acc` to
/// `MR_F32 * NR_F32` writable ones, and AVX2 + FMA must be available.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn kernel_16x4_avx2_f32(kc: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    debug_assert_eq!(MR_F32, 16);
    debug_assert_eq!(NR_F32, 4);
    // SAFETY: intrinsics require AVX2 + FMA (caller's contract); all pointer
    // reads stay within the `kc * MR_F32` / `kc * NR_F32` packed panels and
    // the MR_F32*NR_F32 accumulator, per the documented bounds.
    unsafe {
        let mut c00 = _mm256_setzero_ps(); // rows 0..8 of column 0
        let mut c10 = _mm256_setzero_ps(); // rows 8..16 of column 0
        let mut c01 = _mm256_setzero_ps();
        let mut c11 = _mm256_setzero_ps();
        let mut c02 = _mm256_setzero_ps();
        let mut c12 = _mm256_setzero_ps();
        let mut c03 = _mm256_setzero_ps();
        let mut c13 = _mm256_setzero_ps();

        let mut ap = a;
        let mut bp = b;
        for _ in 0..kc {
            let a0 = _mm256_loadu_ps(ap);
            let a1 = _mm256_loadu_ps(ap.add(8));
            let b0 = _mm256_broadcast_ss(&*bp);
            c00 = _mm256_fmadd_ps(a0, b0, c00);
            c10 = _mm256_fmadd_ps(a1, b0, c10);
            let b1 = _mm256_broadcast_ss(&*bp.add(1));
            c01 = _mm256_fmadd_ps(a0, b1, c01);
            c11 = _mm256_fmadd_ps(a1, b1, c11);
            let b2 = _mm256_broadcast_ss(&*bp.add(2));
            c02 = _mm256_fmadd_ps(a0, b2, c02);
            c12 = _mm256_fmadd_ps(a1, b2, c12);
            let b3 = _mm256_broadcast_ss(&*bp.add(3));
            c03 = _mm256_fmadd_ps(a0, b3, c03);
            c13 = _mm256_fmadd_ps(a1, b3, c13);
            ap = ap.add(MR_F32);
            bp = bp.add(NR_F32);
        }

        add_store(acc, c00);
        add_store(acc.add(8), c10);
        add_store(acc.add(16), c01);
        add_store(acc.add(24), c11);
        add_store(acc.add(32), c02);
        add_store(acc.add(40), c12);
        add_store(acc.add(48), c03);
        add_store(acc.add(56), c13);
    }
}

/// # Safety
/// `dst` points to 8 readable+writable `f32`s; AVX2 must be available.
#[target_feature(enable = "avx2")]
unsafe fn add_store(dst: *mut f32, v: __m256) {
    // SAFETY: `dst` covers 8 readable+writable f32s and AVX2 is available,
    // per the caller's contract.
    unsafe {
        let cur = _mm256_loadu_ps(dst);
        _mm256_storeu_ps(dst, _mm256_add_ps(cur, v));
    }
}
