//! Portable micro-kernel: plain Rust over fixed-size arrays, written so that
//! LLVM auto-vectorizes the inner update (verified by inspection of the
//! generated code on x86-64 with default codegen flags).

use super::{Acc, MR, NR};

/// `acc += Ã_panel * B̃_panel` over depth `kc`.
///
/// # Safety
/// `a` points to `kc * MR` readable elements, `b` to `kc * NR`.
pub unsafe fn kernel_8x4_portable(kc: usize, a: *const f64, b: *const f64, acc: &mut Acc) {
    // Local accumulator keeps the hot state in registers; written back once.
    let mut local = [0.0f64; MR * NR];
    for p in 0..kc {
        // SAFETY: `p < kc`, so these panel reads stay within the caller's
        // `kc * MR` / `kc * NR` bounds.
        let (ap, bp) = unsafe { (a.add(p * MR), b.add(p * NR)) };
        // Read the A column once.
        let mut av = [0.0f64; MR];
        for (i, slot) in av.iter_mut().enumerate() {
            // SAFETY: `i < MR`, within the micro-panel column.
            *slot = unsafe { *ap.add(i) };
        }
        for j in 0..NR {
            // SAFETY: `j < NR`, within the micro-panel row.
            let bj = unsafe { *bp.add(j) };
            let col = &mut local[j * MR..(j + 1) * MR];
            for i in 0..MR {
                col[i] += av[i] * bj;
            }
        }
    }
    for (dst, src) in acc.iter_mut().zip(local.iter()) {
        *dst += *src;
    }
}

/// Single-precision portable kernel over the `16 x 4` `f32` register tile.
///
/// # Safety
/// `a` points to `kc * 16` readable `f32` elements, `b` to `kc * 4`, and
/// `acc` to a writable `16 x 4` column-major tile.
pub unsafe fn kernel_16x4_portable_f32(kc: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    use super::{MR_F32, NR_F32};
    let mut local = [0.0f32; MR_F32 * NR_F32];
    for p in 0..kc {
        // SAFETY: `p < kc`, so these panel reads stay within the caller's
        // `kc * MR_F32` / `kc * NR_F32` bounds.
        let (ap, bp) = unsafe { (a.add(p * MR_F32), b.add(p * NR_F32)) };
        let mut av = [0.0f32; MR_F32];
        for (i, slot) in av.iter_mut().enumerate() {
            // SAFETY: `i < MR_F32`, within the micro-panel column.
            *slot = unsafe { *ap.add(i) };
        }
        for j in 0..NR_F32 {
            // SAFETY: `j < NR_F32`, within the micro-panel row.
            let bj = unsafe { *bp.add(j) };
            let col = &mut local[j * MR_F32..(j + 1) * MR_F32];
            for i in 0..MR_F32 {
                col[i] += av[i] * bj;
            }
        }
    }
    for (i, src) in local.iter().enumerate() {
        // SAFETY: `i < MR_F32 * NR_F32`, within the caller's writable tile.
        unsafe { *acc.add(i) += *src };
    }
}
