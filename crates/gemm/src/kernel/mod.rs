//! Register-blocked micro-kernels.
//!
//! A micro-kernel computes the full `MR x NR` rank-`kc` update
//! `acc += Ã_panel * B̃_panel` from two packed micro-panels, entirely in
//! registers/local storage. Destination handling (adding the accumulator
//! into one or many submatrices of `C`) lives in the driver so that the same
//! kernel serves plain GEMM and every FMM variant.
//!
//! Two `f64` implementations are provided (a portable Rust kernel that LLVM
//! auto-vectorizes, and AVX2+FMA / AVX-512 kernels using `std::arch`
//! intrinsics) plus an `f32` pair (portable and AVX2+FMA over the doubled
//! `16 x 4` register tile), each selected once at startup by runtime
//! feature detection. Kernel dispatch for generic code goes through the
//! [`GemmScalar`] trait: the driver asks `T::micro_kernel()` for the entry
//! point and `T::MR`/`T::NR` for the register tile it packs for.

#[cfg(target_arch = "x86_64")]
pub mod avx;
#[cfg(target_arch = "x86_64")]
pub mod avx512;
#[cfg(target_arch = "x86_64")]
pub mod avx_f32;
pub mod portable;

use crate::workspace::WorkspacePool;
use fmm_dense::Scalar;

/// Micro-tile rows: two 256-bit vectors of the dtype per accumulator
/// column. For `f64` that is the paper's `mR = 8`.
pub const MR: usize = 2 * <f64 as Scalar>::SIMD_WIDTH_HINT;
/// Micro-tile columns. Matches the paper's `nR = 4`.
pub const NR: usize = 4;

/// The micro-kernel accumulator: an `MR x NR` tile in column-major order
/// (`acc[i + j * MR]`).
pub type Acc = [f64; MR * NR];

/// Function signature shared by all micro-kernels.
///
/// # Safety
/// `a` must point to `kc * MR` readable elements (a packed A micro-panel)
/// and `b` to `kc * NR` readable elements (a packed B micro-panel).
pub type MicroKernel = unsafe fn(kc: usize, a: *const f64, b: *const f64, acc: &mut Acc);

/// Micro-tile rows of the `f32` kernels: twice the `f64` rows, matching
/// the doubled 256-bit lane count (16 `f32` rows = two `__m256` vectors).
pub const MR_F32: usize = 2 * <f32 as Scalar>::SIMD_WIDTH_HINT;
/// Micro-tile columns of the `f32` kernels.
pub const NR_F32: usize = 4;

/// Upper bound on `MR * NR` across every supported scalar — the driver's
/// stack accumulator is sized by this so one code path serves all dtypes.
pub const ACC_CAP: usize = 64;

/// Raw generic micro-kernel signature: `acc` (an `MR x NR` column-major
/// tile of `T`) accumulates the rank-`kc` product of two packed panels.
///
/// # Safety
/// `a` must point to `kc * MR` readable elements, `b` to `kc * NR`, and
/// `acc` to `MR * NR` writable elements, for the `MR`/`NR` of `T`.
pub type MicroKernelFn<T> = unsafe fn(kc: usize, a: *const T, b: *const T, acc: *mut T);

/// The per-scalar kernel dispatch the generic GEMM driver runs on: the
/// register tile shape, the runtime-selected micro-kernel, and the
/// process-wide packing-workspace pool for this dtype.
pub trait GemmScalar: Scalar {
    /// Micro-tile rows the kernels of this scalar compute.
    const MR: usize;
    /// Micro-tile columns.
    const NR: usize;

    /// The best micro-kernel for the running CPU (detected once).
    fn micro_kernel() -> MicroKernelFn<Self>;
    /// Name of the kernel [`GemmScalar::micro_kernel`] returns.
    fn micro_kernel_name() -> &'static str;
    /// The process-wide packing-workspace pool for this dtype (each scalar
    /// gets its own, so `f32` and `f64` traffic never trade buffers).
    fn global_pool() -> &'static WorkspacePool<Self>;
}

impl GemmScalar for f64 {
    const MR: usize = MR;
    const NR: usize = NR;

    fn micro_kernel() -> MicroKernelFn<f64> {
        // One concrete adapter per kernel over the legacy `&mut Acc` ABI
        // (the generic driver hands a pointer to at least `MR * NR`
        // writable elements), selected once — the adapter invoked per
        // micro-tile is a single direct call into the chosen kernel, with
        // no per-tile `OnceLock` load.
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: (all three adapters) the caller upholds the
            // `MicroKernelFn` contract — `acc` points to `MR * NR`
            // writable elements, which is exactly `Acc`'s layout — and
            // each adapter is only selected after `selected_name()`
            // confirmed the matching CPU features at runtime.
            unsafe fn adapt_avx512(kc: usize, a: *const f64, b: *const f64, acc: *mut f64) {
                // SAFETY: forwarded `MicroKernelFn` contract (see above).
                unsafe { avx512::kernel_8x4_avx512_entry(kc, a, b, &mut *(acc as *mut Acc)) }
            }
            // SAFETY: as above.
            unsafe fn adapt_avx2(kc: usize, a: *const f64, b: *const f64, acc: *mut f64) {
                // SAFETY: forwarded `MicroKernelFn` contract (see above).
                unsafe { avx::kernel_8x4_avx2_entry(kc, a, b, &mut *(acc as *mut Acc)) }
            }
            // SAFETY: as above (the portable kernel needs no CPU features).
            unsafe fn adapt_portable(kc: usize, a: *const f64, b: *const f64, acc: *mut f64) {
                // SAFETY: forwarded `MicroKernelFn` contract (see above).
                unsafe { portable::kernel_8x4_portable(kc, a, b, &mut *(acc as *mut Acc)) }
            }
            use std::sync::OnceLock;
            static CHOICE: OnceLock<MicroKernelFn<f64>> = OnceLock::new();
            *CHOICE.get_or_init(|| match selected_name() {
                "avx512f_8x4" => adapt_avx512,
                "avx2_fma_8x4" => adapt_avx2,
                _ => adapt_portable,
            })
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            // SAFETY: the caller upholds the `MicroKernelFn` contract —
            // `acc` points to `MR * NR` writable elements, which is
            // exactly `Acc`'s layout; the portable kernel needs no CPU
            // features.
            unsafe fn adapt_portable(kc: usize, a: *const f64, b: *const f64, acc: *mut f64) {
                // SAFETY: forwarded `MicroKernelFn` contract (see above).
                unsafe { portable::kernel_8x4_portable(kc, a, b, &mut *(acc as *mut Acc)) }
            }
            adapt_portable
        }
    }

    fn micro_kernel_name() -> &'static str {
        selected_name()
    }

    fn global_pool() -> &'static WorkspacePool<f64> {
        static POOL: WorkspacePool<f64> = WorkspacePool::new();
        &POOL
    }
}

impl GemmScalar for f32 {
    const MR: usize = MR_F32;
    const NR: usize = NR_F32;

    fn micro_kernel() -> MicroKernelFn<f32> {
        select_f32()
    }

    fn micro_kernel_name() -> &'static str {
        selected_name_f32()
    }

    fn global_pool() -> &'static WorkspacePool<f32> {
        static POOL: WorkspacePool<f32> = WorkspacePool::new();
        &POOL
    }
}

const _: () = assert!(MR * NR <= ACC_CAP && MR_F32 * NR_F32 <= ACC_CAP);

/// Select the best `f32` micro-kernel for the running CPU (detected once).
pub fn select_f32() -> MicroKernelFn<f32> {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static CHOICE: OnceLock<MicroKernelFn<f32>> = OnceLock::new();
        *CHOICE.get_or_init(|| match selected_name_f32() {
            "avx2_fma_16x4" => avx_f32::kernel_16x4_avx2_f32_entry,
            _ => portable::kernel_16x4_portable_f32,
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        portable::kernel_16x4_portable_f32
    }
}

/// Name of the kernel [`select_f32`] returns, for benchmark reports.
pub fn selected_name_f32() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return "avx2_fma_16x4";
        }
    }
    "portable_16x4"
}

/// Select the best micro-kernel for the running CPU (detected once).
///
/// Preference order on x86-64: AVX-512F, then AVX2+FMA, then portable.
/// Set `FMM_NO_AVX512=1` to skip the 512-bit kernel (beneficial on parts
/// that downclock under 512-bit load).
pub fn select() -> MicroKernel {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static CHOICE: OnceLock<MicroKernel> = OnceLock::new();
        *CHOICE.get_or_init(|| match selected_name() {
            "avx512f_8x4" => avx512::kernel_8x4_avx512_entry,
            "avx2_fma_8x4" => avx::kernel_8x4_avx2_entry,
            _ => portable::kernel_8x4_portable,
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        portable::kernel_8x4_portable
    }
}

/// Name of the kernel [`select`] returns, for benchmark reports.
pub fn selected_name() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        let no512 = std::env::var_os("FMM_NO_AVX512").is_some_and(|v| v != "0");
        if !no512 && std::arch::is_x86_feature_detected!("avx512f") {
            return "avx512f_8x4";
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return "avx2_fma_8x4";
        }
    }
    "portable_8x4"
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pack simple deterministic panels and check the kernel against a
    /// scalar triple loop.
    fn check_kernel(kernel: MicroKernel, kc: usize) {
        let a: Vec<f64> = (0..kc * MR).map(|x| (x % 13) as f64 - 6.0).collect();
        let b: Vec<f64> = (0..kc * NR).map(|x| (x % 7) as f64 * 0.5 - 1.5).collect();
        let mut acc: Acc = [0.1; MR * NR]; // non-zero start: kernel must accumulate
                                           // SAFETY: panels allocated with exactly the required lengths.
        unsafe { kernel(kc, a.as_ptr(), b.as_ptr(), &mut acc) };
        for j in 0..NR {
            for i in 0..MR {
                let mut expect = 0.1;
                for p in 0..kc {
                    expect += a[p * MR + i] * b[p * NR + j];
                }
                let got = acc[i + j * MR];
                assert!(
                    (got - expect).abs() < 1e-10 * expect.abs().max(1.0),
                    "kc={kc} i={i} j={j}: got {got}, expect {expect}"
                );
            }
        }
    }

    #[test]
    fn portable_kernel_matches_scalar() {
        for kc in [0, 1, 2, 5, 64, 257] {
            check_kernel(portable::kernel_8x4_portable, kc);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_kernel_matches_scalar_when_supported() {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            for kc in [0, 1, 2, 5, 64, 257] {
                check_kernel(avx::kernel_8x4_avx2_entry, kc);
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512_kernel_matches_scalar_when_supported() {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // Odd and even kc both exercise the 2-way unroll remainder.
            for kc in [0, 1, 2, 3, 5, 64, 255, 256] {
                check_kernel(avx512::kernel_8x4_avx512_entry, kc);
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn all_available_kernels_agree_exactly() {
        // Identical packed inputs, identical FMA order within a column:
        // every kernel must produce the same accumulator bit for bit is too
        // strong across ISAs (different fma contraction), so compare to
        // 1 ulp-scale tolerance.
        let kc = 173;
        let a: Vec<f64> = (0..kc * MR).map(|x| ((x * 37) % 11) as f64 - 5.0).collect();
        let b: Vec<f64> = (0..kc * NR).map(|x| ((x * 17) % 7) as f64 * 0.25).collect();
        let mut kernels: Vec<(&str, MicroKernel)> =
            vec![("portable", portable::kernel_8x4_portable)];
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            kernels.push(("avx2", avx::kernel_8x4_avx2_entry));
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            kernels.push(("avx512", avx512::kernel_8x4_avx512_entry));
        }
        let mut results = Vec::new();
        for (name, k) in &kernels {
            let mut acc: Acc = [0.0; MR * NR];
            // SAFETY: panels sized above.
            unsafe { k(kc, a.as_ptr(), b.as_ptr(), &mut acc) };
            results.push((*name, acc));
        }
        for pair in results.windows(2) {
            for i in 0..MR * NR {
                let (x, y) = (pair[0].1[i], pair[1].1[i]);
                assert!(
                    (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                    "{} vs {} at {i}: {x} vs {y}",
                    pair[0].0,
                    pair[1].0
                );
            }
        }
    }

    #[test]
    fn selected_kernel_matches_scalar() {
        check_kernel(select(), 128);
        assert!(!selected_name().is_empty());
    }

    /// f32 analogue of `check_kernel`: packed panels against a scalar
    /// triple loop, at the f32-appropriate tolerance.
    fn check_kernel_f32(kernel: MicroKernelFn<f32>, kc: usize) {
        let a: Vec<f32> = (0..kc * MR_F32).map(|x| (x % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..kc * NR_F32).map(|x| (x % 7) as f32 * 0.5 - 1.5).collect();
        let mut acc = [0.1f32; MR_F32 * NR_F32]; // non-zero start: kernel must accumulate
                                                 // SAFETY: panels allocated with exactly the required lengths.
        unsafe { kernel(kc, a.as_ptr(), b.as_ptr(), acc.as_mut_ptr()) };
        for j in 0..NR_F32 {
            for i in 0..MR_F32 {
                let mut expect = 0.1f32;
                for p in 0..kc {
                    expect += a[p * MR_F32 + i] * b[p * NR_F32 + j];
                }
                let got = acc[i + j * MR_F32];
                assert!(
                    (got - expect).abs() < 1e-3 * expect.abs().max(1.0),
                    "kc={kc} i={i} j={j}: got {got}, expect {expect}"
                );
            }
        }
    }

    #[test]
    fn portable_f32_kernel_matches_scalar() {
        for kc in [0, 1, 2, 5, 64, 257] {
            check_kernel_f32(portable::kernel_16x4_portable_f32, kc);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_f32_kernel_matches_scalar_when_supported() {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            for kc in [0, 1, 2, 5, 64, 257] {
                check_kernel_f32(avx_f32::kernel_16x4_avx2_f32_entry, kc);
            }
        }
    }

    #[test]
    fn selected_f32_kernel_matches_scalar() {
        check_kernel_f32(select_f32(), 128);
        assert!(!selected_name_f32().is_empty());
    }

    #[test]
    fn gemm_scalar_tiles_fit_the_accumulator() {
        assert_eq!(<f64 as GemmScalar>::MR * <f64 as GemmScalar>::NR, 32);
        assert_eq!(<f32 as GemmScalar>::MR * <f32 as GemmScalar>::NR, ACC_CAP);
        // The f32 tile doubles the f64 rows, tracking the SIMD width hint.
        assert_eq!(<f32 as GemmScalar>::MR, 2 * <f64 as GemmScalar>::MR);
    }
}
