//! Register-blocked micro-kernels.
//!
//! A micro-kernel computes the full `MR x NR` rank-`kc` update
//! `acc += Ã_panel * B̃_panel` from two packed micro-panels, entirely in
//! registers/local storage. Destination handling (adding the accumulator
//! into one or many submatrices of `C`) lives in the driver so that the same
//! kernel serves plain GEMM and every FMM variant.
//!
//! Two implementations are provided: a portable Rust kernel that LLVM
//! auto-vectorizes, and an AVX2+FMA kernel using `std::arch` intrinsics,
//! selected once at startup by runtime feature detection.

#[cfg(target_arch = "x86_64")]
pub mod avx;
#[cfg(target_arch = "x86_64")]
pub mod avx512;
pub mod portable;

/// Micro-tile rows. Matches the paper's `mR = 8` for double precision.
pub const MR: usize = 8;
/// Micro-tile columns. Matches the paper's `nR = 4`.
pub const NR: usize = 4;

/// The micro-kernel accumulator: an `MR x NR` tile in column-major order
/// (`acc[i + j * MR]`).
pub type Acc = [f64; MR * NR];

/// Function signature shared by all micro-kernels.
///
/// # Safety
/// `a` must point to `kc * MR` readable elements (a packed A micro-panel)
/// and `b` to `kc * NR` readable elements (a packed B micro-panel).
pub type MicroKernel = unsafe fn(kc: usize, a: *const f64, b: *const f64, acc: &mut Acc);

/// Select the best micro-kernel for the running CPU (detected once).
///
/// Preference order on x86-64: AVX-512F, then AVX2+FMA, then portable.
/// Set `FMM_NO_AVX512=1` to skip the 512-bit kernel (beneficial on parts
/// that downclock under 512-bit load).
pub fn select() -> MicroKernel {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static CHOICE: OnceLock<MicroKernel> = OnceLock::new();
        *CHOICE.get_or_init(|| match selected_name() {
            "avx512f_8x4" => avx512::kernel_8x4_avx512_entry,
            "avx2_fma_8x4" => avx::kernel_8x4_avx2_entry,
            _ => portable::kernel_8x4_portable,
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        portable::kernel_8x4_portable
    }
}

/// Name of the kernel [`select`] returns, for benchmark reports.
pub fn selected_name() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        let no512 = std::env::var_os("FMM_NO_AVX512").is_some_and(|v| v != "0");
        if !no512 && std::arch::is_x86_feature_detected!("avx512f") {
            return "avx512f_8x4";
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return "avx2_fma_8x4";
        }
    }
    "portable_8x4"
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pack simple deterministic panels and check the kernel against a
    /// scalar triple loop.
    fn check_kernel(kernel: MicroKernel, kc: usize) {
        let a: Vec<f64> = (0..kc * MR).map(|x| (x % 13) as f64 - 6.0).collect();
        let b: Vec<f64> = (0..kc * NR).map(|x| (x % 7) as f64 * 0.5 - 1.5).collect();
        let mut acc: Acc = [0.1; MR * NR]; // non-zero start: kernel must accumulate
                                           // SAFETY: panels allocated with exactly the required lengths.
        unsafe { kernel(kc, a.as_ptr(), b.as_ptr(), &mut acc) };
        for j in 0..NR {
            for i in 0..MR {
                let mut expect = 0.1;
                for p in 0..kc {
                    expect += a[p * MR + i] * b[p * NR + j];
                }
                let got = acc[i + j * MR];
                assert!(
                    (got - expect).abs() < 1e-10 * expect.abs().max(1.0),
                    "kc={kc} i={i} j={j}: got {got}, expect {expect}"
                );
            }
        }
    }

    #[test]
    fn portable_kernel_matches_scalar() {
        for kc in [0, 1, 2, 5, 64, 257] {
            check_kernel(portable::kernel_8x4_portable, kc);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_kernel_matches_scalar_when_supported() {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            for kc in [0, 1, 2, 5, 64, 257] {
                check_kernel(avx::kernel_8x4_avx2_entry, kc);
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512_kernel_matches_scalar_when_supported() {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // Odd and even kc both exercise the 2-way unroll remainder.
            for kc in [0, 1, 2, 3, 5, 64, 255, 256] {
                check_kernel(avx512::kernel_8x4_avx512_entry, kc);
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn all_available_kernels_agree_exactly() {
        // Identical packed inputs, identical FMA order within a column:
        // every kernel must produce the same accumulator bit for bit is too
        // strong across ISAs (different fma contraction), so compare to
        // 1 ulp-scale tolerance.
        let kc = 173;
        let a: Vec<f64> = (0..kc * MR).map(|x| ((x * 37) % 11) as f64 - 5.0).collect();
        let b: Vec<f64> = (0..kc * NR).map(|x| ((x * 17) % 7) as f64 * 0.25).collect();
        let mut kernels: Vec<(&str, MicroKernel)> =
            vec![("portable", portable::kernel_8x4_portable)];
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            kernels.push(("avx2", avx::kernel_8x4_avx2_entry));
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            kernels.push(("avx512", avx512::kernel_8x4_avx512_entry));
        }
        let mut results = Vec::new();
        for (name, k) in &kernels {
            let mut acc: Acc = [0.0; MR * NR];
            // SAFETY: panels sized above.
            unsafe { k(kc, a.as_ptr(), b.as_ptr(), &mut acc) };
            results.push((*name, acc));
        }
        for pair in results.windows(2) {
            for i in 0..MR * NR {
                let (x, y) = (pair[0].1[i], pair[1].1[i]);
                assert!(
                    (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                    "{} vs {} at {i}: {x} vs {y}",
                    pair[0].0,
                    pair[1].0
                );
            }
        }
    }

    #[test]
    fn selected_kernel_matches_scalar() {
        check_kernel(select(), 128);
        assert!(!selected_name().is_empty());
    }
}
