//! Reference (unblocked) matrix multiplication, used as the correctness
//! oracle for the blocked GEMM and for every FMM variant.

use fmm_dense::{MatMut, MatRef, Scalar};

/// `C += A * B` with a cache-oblivious `j-p-i` loop nest (column-major
/// friendly: the inner loop walks a column of `A` and of `C`).
pub fn matmul_into<T: Scalar>(mut c: MatMut<'_, T>, a: MatRef<'_, T>, b: MatRef<'_, T>) {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dimensions differ");
    assert_eq!(c.rows(), a.rows(), "matmul: C rows");
    assert_eq!(c.cols(), b.cols(), "matmul: C cols");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for j in 0..n {
        for p in 0..k {
            // SAFETY: p < k, j < n.
            let bpj = unsafe { b.at_unchecked(p, j) };
            if bpj == T::ZERO {
                continue;
            }
            for i in 0..m {
                // SAFETY: i < m, p < k.
                let aip = unsafe { a.at_unchecked(i, p) };
                c.add_at(i, j, aip * bpj);
            }
        }
    }
}

/// Convenience: allocate and return `A * B`.
pub fn matmul<T: Scalar>(a: MatRef<'_, T>, b: MatRef<'_, T>) -> fmm_dense::Matrix<T> {
    let mut c = fmm_dense::Matrix::zeros(a.rows(), b.cols());
    matmul_into(c.as_mut(), a, b);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_dense::{fill, Matrix};

    #[test]
    fn identity_is_neutral() {
        let a = fill::bench_workload(5, 5, 9);
        let id = Matrix::identity(5);
        let c = matmul(a.as_ref(), id.as_ref());
        assert_eq!(c, a);
        let c2 = matmul(id.as_ref(), a.as_ref());
        assert_eq!(c2, a);
    }

    #[test]
    fn known_2x2_product() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = matmul(a.as_ref(), b.as_ref());
        assert_eq!(c, Matrix::from_rows(2, 2, &[19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn accumulates_into_existing_c() {
        let a = Matrix::identity(3);
        let b = Matrix::filled(3, 3, 2.0);
        let mut c = Matrix::filled(3, 3, 1.0);
        matmul_into(c.as_mut(), a.as_ref(), b.as_ref());
        assert_eq!(c, Matrix::filled(3, 3, 3.0));
    }

    #[test]
    fn rectangular_shapes() {
        let a = fill::counter(3, 4);
        let b = fill::counter(4, 2);
        let c = matmul(a.as_ref(), b.as_ref());
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 2);
        // Spot check one entry by hand.
        let mut e = 0.0;
        for p in 0..4 {
            e += a.get(1, p) * b.get(p, 1);
        }
        assert_eq!(c.get(1, 1), e);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_dim_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        matmul(a.as_ref(), b.as_ref());
    }
}
