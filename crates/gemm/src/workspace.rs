//! Reusable packing workspace and the process-wide workspace pool.
//!
//! [`GemmWorkspace`] is the pair of packing buffers one GEMM invocation
//! needs; it is `Send`, so a workspace can be created on one thread and
//! used on another. [`WorkspacePool`] recycles workspaces across calls and
//! threads: `acquire` pops a pooled workspace (or allocates on first use),
//! the returned guard hands it back on drop. After warmup — one workspace
//! per concurrently-active caller — acquisition is allocation-free, which
//! [`WorkspacePool::allocation_count`] makes testable.

use crate::kernel::GemmScalar;
use crate::params::BlockingParams;
use fmm_dense::{AlignedBuf, Scalar};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// The pair of packing buffers (`Ã`, `B̃`) a GEMM invocation needs,
/// generic over the packed element type (default `f64`).
///
/// Allocated once and reused across calls (and across the `R_L` products of
/// an FMM execution) so that buffer allocation never appears in the timed
/// region — mirroring BLIS, where the packing buffers are long-lived.
pub struct GemmWorkspace<T = f64> {
    /// Packed `mc x kc` block of (a linear combination of) `A`.
    pub abuf: AlignedBuf<T>,
    /// Packed `kc x nc` panel of (a linear combination of) `B`.
    pub bbuf: AlignedBuf<T>,
}

impl<T: Scalar> GemmWorkspace<T> {
    /// Allocate buffers sized for `params`.
    pub fn for_params(params: &BlockingParams) -> Self {
        Self {
            abuf: AlignedBuf::zeroed(params.packed_a_len()),
            bbuf: AlignedBuf::zeroed(params.packed_b_len()),
        }
    }

    /// Zero-capacity workspace; the driver's [`GemmWorkspace::ensure`] call
    /// sizes it on first sequential use. Lets holders that may never pack
    /// (e.g. contexts running only parallel or rim-free executions) defer
    /// the multi-megabyte buffers.
    pub fn empty() -> Self {
        Self { abuf: AlignedBuf::zeroed(0), bbuf: AlignedBuf::zeroed(0) }
    }

    /// Grow the buffers if `params` needs more space (never shrinks).
    pub fn ensure(&mut self, params: &BlockingParams) {
        self.abuf.ensure_capacity(params.packed_a_len());
        self.bbuf.ensure_capacity(params.packed_b_len());
    }
}

impl<T: Scalar> std::fmt::Debug for GemmWorkspace<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GemmWorkspace(a={}, b={})", self.abuf.len(), self.bbuf.len())
    }
}

// One engine serves concurrent callers by moving workspaces between
// threads; this must hold for the pool to be sound (and it does: the
// buffers are exclusively-owned heap allocations, like `Vec<f64>`).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<GemmWorkspace<f64>>();
    assert_send::<GemmWorkspace<f32>>();
};

/// Upper bound on idle pooled workspaces; returns beyond it are dropped.
/// Bounds idle memory at roughly `PARKED_MAX x` one workspace (~9 MB each
/// with default blocking parameters) without limiting concurrency.
const PARKED_MAX: usize = 64;

/// A recycling pool of [`GemmWorkspace`]s shared by every caller that does
/// not manage its own workspace explicitly. One pool per scalar type: the
/// process-wide instances live behind [`crate::kernel::GemmScalar::global_pool`].
pub struct WorkspacePool<T = f64> {
    parked: Mutex<Vec<GemmWorkspace<T>>>,
    allocations: AtomicU64,
}

impl<T: Scalar> WorkspacePool<T> {
    /// An empty pool.
    pub const fn new() -> Self {
        Self { parked: Mutex::new(Vec::new()), allocations: AtomicU64::new(0) }
    }

    /// Number of fresh workspace allocations (never decreases; flat once
    /// the pool holds one workspace per concurrently-active caller).
    pub fn allocation_count(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Number of idle workspaces currently parked.
    pub fn parked_count(&self) -> usize {
        self.parked.lock().len()
    }

    fn release(&self, ws: GemmWorkspace<T>) {
        let mut parked = self.parked.lock();
        if parked.len() < PARKED_MAX {
            parked.push(ws);
        }
    }
}

impl<T: GemmScalar> WorkspacePool<T> {
    /// Check out a workspace sized for `params` *at this dtype's register
    /// tile* — the same [`BlockingParams::with_register_tile`] adjustment
    /// the driver applies, so a buffer reserved here never has to grow
    /// inside the GEMM call (e.g. inside a prewarmed parallel task). Pops
    /// a pooled workspace or allocates on first use; the guard returns it
    /// to the pool when dropped.
    pub fn acquire(&self, params: &BlockingParams) -> PooledWorkspace<'_, T> {
        let params = params.with_register_tile(T::MR, T::NR);
        let ws = match self.parked.lock().pop() {
            Some(mut ws) => {
                ws.ensure(&params);
                ws
            }
            None => {
                self.allocations.fetch_add(1, Ordering::Relaxed);
                GemmWorkspace::for_params(&params)
            }
        };
        PooledWorkspace { ws: Some(ws), pool: self }
    }
}

impl WorkspacePool<f64> {
    /// The process-wide `f64` pool used by [`crate::gemm`] and the parallel
    /// driver's per-worker packing buffers. Generic code should reach the
    /// per-dtype pool through [`crate::kernel::GemmScalar::global_pool`].
    pub fn global() -> &'static WorkspacePool<f64> {
        <f64 as crate::kernel::GemmScalar>::global_pool()
    }
}

impl<T: Scalar> Default for WorkspacePool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> std::fmt::Debug for WorkspacePool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WorkspacePool(parked={}, allocations={})",
            self.parked_count(),
            self.allocation_count()
        )
    }
}

/// An acquired workspace; derefs to [`GemmWorkspace`] and returns itself to
/// the pool on drop.
pub struct PooledWorkspace<'a, T: Scalar = f64> {
    ws: Option<GemmWorkspace<T>>,
    pool: &'a WorkspacePool<T>,
}

impl<T: Scalar> std::ops::Deref for PooledWorkspace<'_, T> {
    type Target = GemmWorkspace<T>;
    fn deref(&self) -> &GemmWorkspace<T> {
        self.ws.as_ref().expect("present until drop")
    }
}

impl<T: Scalar> std::ops::DerefMut for PooledWorkspace<'_, T> {
    fn deref_mut(&mut self) -> &mut GemmWorkspace<T> {
        self.ws.as_mut().expect("present until drop")
    }
}

impl<T: Scalar> Drop for PooledWorkspace<'_, T> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.release(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_from_params() {
        let p = BlockingParams::tiny();
        let ws = GemmWorkspace::<f64>::for_params(&p);
        assert_eq!(ws.abuf.len(), p.packed_a_len());
        assert_eq!(ws.bbuf.len(), p.packed_b_len());
    }

    #[test]
    fn ensure_grows_for_larger_params() {
        let mut ws = GemmWorkspace::<f64>::for_params(&BlockingParams::tiny());
        let big = BlockingParams::default();
        ws.ensure(&big);
        assert!(ws.abuf.len() >= big.packed_a_len());
        assert!(ws.bbuf.len() >= big.packed_b_len());
    }

    #[test]
    fn pool_recycles_instead_of_allocating() {
        let pool = WorkspacePool::<f64>::new();
        let p = BlockingParams::tiny();
        {
            let _a = pool.acquire(&p);
            let _b = pool.acquire(&p);
            assert_eq!(pool.allocation_count(), 2, "two concurrent users");
        }
        assert_eq!(pool.parked_count(), 2);
        for _ in 0..10 {
            let _ws = pool.acquire(&p);
        }
        assert_eq!(pool.allocation_count(), 2, "serial reuse allocates nothing");
    }

    #[test]
    fn pool_grows_pooled_workspace_for_larger_params() {
        let pool = WorkspacePool::<f64>::new();
        drop(pool.acquire(&BlockingParams::tiny()));
        let big = BlockingParams::default();
        let ws = pool.acquire(&big);
        assert!(ws.abuf.len() >= big.packed_a_len());
        assert!(ws.bbuf.len() >= big.packed_b_len());
    }

    #[test]
    fn pool_is_safe_under_contention() {
        let pool = WorkspacePool::<f64>::new();
        let p = BlockingParams::tiny();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let mut ws = pool.acquire(&p);
                        ws.abuf[0] = 1.0;
                    }
                });
            }
        });
        assert!(pool.allocation_count() <= 8, "at most one allocation per thread");
        assert!(pool.parked_count() <= 8);
    }
}
