//! Reusable packing workspace.

use crate::params::BlockingParams;
use fmm_dense::AlignedBuf;

/// The pair of packing buffers (`Ã`, `B̃`) a GEMM invocation needs.
///
/// Allocated once and reused across calls (and across the `R_L` products of
/// an FMM execution) so that buffer allocation never appears in the timed
/// region — mirroring BLIS, where the packing buffers are long-lived.
pub struct GemmWorkspace {
    /// Packed `mc x kc` block of (a linear combination of) `A`.
    pub abuf: AlignedBuf,
    /// Packed `kc x nc` panel of (a linear combination of) `B`.
    pub bbuf: AlignedBuf,
}

impl GemmWorkspace {
    /// Allocate buffers sized for `params`.
    pub fn for_params(params: &BlockingParams) -> Self {
        Self {
            abuf: AlignedBuf::zeroed(params.packed_a_len()),
            bbuf: AlignedBuf::zeroed(params.packed_b_len()),
        }
    }

    /// Grow the buffers if `params` needs more space (never shrinks).
    pub fn ensure(&mut self, params: &BlockingParams) {
        self.abuf.ensure_capacity(params.packed_a_len());
        self.bbuf.ensure_capacity(params.packed_b_len());
    }
}

impl std::fmt::Debug for GemmWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GemmWorkspace(a={}, b={})", self.abuf.len(), self.bbuf.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_from_params() {
        let p = BlockingParams::tiny();
        let ws = GemmWorkspace::for_params(&p);
        assert_eq!(ws.abuf.len(), p.packed_a_len());
        assert_eq!(ws.bbuf.len(), p.packed_b_len());
    }

    #[test]
    fn ensure_grows_for_larger_params() {
        let mut ws = GemmWorkspace::for_params(&BlockingParams::tiny());
        let big = BlockingParams::default();
        ws.ensure(&big);
        assert!(ws.abuf.len() >= big.packed_a_len());
        assert!(ws.bbuf.len() >= big.packed_b_len());
    }
}
