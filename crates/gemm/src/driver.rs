//! The five-loop GEMM driver, generalized for fast matrix multiplication.
//!
//! [`gemm_sums`] computes `P = (sum_i alpha_i A_i) * (sum_j beta_j B_j)` and
//! applies `C_d += w_d * P` for every destination `d`, without ever
//! materializing the operand sums or `P`:
//!
//! * operand sums are folded into the packing ([`crate::pack`]);
//! * the destination updates are applied straight from the micro-kernel
//!   accumulator (the multi-destination epilogue of the paper's ABC variant).
//!
//! Loop structure (paper Fig. 1): `jc` over `n` in steps of `nc` (loop 5),
//! `pc` over `k` in steps of `kc` (loop 4, packs `B̃`), `ic` over `m` in
//! steps of `mc` (loop 3, packs `Ã`), then the macro-kernel: `jr` (loop 2)
//! and `ir` (loop 1) over micro-tiles.

use crate::kernel::{GemmScalar, MicroKernelFn, ACC_CAP};
use crate::pack;
use crate::params::BlockingParams;
use crate::workspace::GemmWorkspace;
use fmm_dense::{MatMut, MatRef, Scalar};

/// One destination of a generalized GEMM: a mutable view plus the scalar
/// coefficient `w` applied to the product before accumulation.
pub struct DestTile<'a, T = f64> {
    view: MatMut<'a, T>,
    coeff: T,
}

impl<'a, T: Scalar> DestTile<'a, T> {
    /// Destination `view += coeff * P`.
    pub fn new(view: MatMut<'a, T>, coeff: T) -> Self {
        Self { view, coeff }
    }

    /// The coefficient `w` for this destination.
    pub fn coeff(&self) -> T {
        self.coeff
    }

    /// Shape of the destination.
    pub fn shape(&self) -> (usize, usize) {
        (self.view.rows(), self.view.cols())
    }

    /// Immutable raw parts, used by the parallel driver.
    pub(crate) fn raw(&mut self) -> RawDest<T> {
        RawDest {
            ptr: self.view.as_mut_ptr(),
            rows: self.view.rows(),
            cols: self.view.cols(),
            rs: self.view.row_stride(),
            cs: self.view.col_stride(),
            coeff: self.coeff,
        }
    }
}

/// Raw-pointer form of a destination, `Copy` so the macro-kernel can keep an
/// array of them. Writes through it are only sound while the originating
/// `DestTile` borrow is live and writers touch disjoint element sets.
#[derive(Debug)]
pub(crate) struct RawDest<T> {
    pub ptr: *mut T,
    pub rows: usize,
    pub cols: usize,
    pub rs: isize,
    pub cs: isize,
    pub coeff: T,
}

impl<T: Scalar> Clone for RawDest<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: Scalar> Copy for RawDest<T> {}

// SAFETY: see the invariant on the type — the parallel driver partitions
// writers by disjoint row ranges, and the sequential driver is single
// threaded. The pointer itself is as sendable as the `&mut` it came from.
unsafe impl<T: Scalar> Send for RawDest<T> {}
unsafe impl<T: Scalar> Sync for RawDest<T> {}

/// Generalized GEMM: for every destination `d`,
/// `C_d (+)= w_d * (sum a_terms) * (sum b_terms)`.
///
/// All `a_terms` must share one shape `(m, k)`, all `b_terms` one shape
/// `(k, n)`, and all destinations one shape `(m, n)`.
///
/// `overwrite = false` accumulates (`+=`, the FMM/GEMM default). Use
/// [`gemm_sums_overwrite`] for `=` semantics (used for `M_r` temporaries).
pub fn gemm_sums<T: GemmScalar>(
    dests: &mut [DestTile<'_, T>],
    a_terms: &[(T, MatRef<'_, T>)],
    b_terms: &[(T, MatRef<'_, T>)],
    params: &BlockingParams,
    ws: &mut GemmWorkspace<T>,
) {
    gemm_sums_impl(dests, a_terms, b_terms, params, ws, false)
}

/// As [`gemm_sums`], but destinations are overwritten (`C_d = w_d * P`)
/// instead of accumulated into.
pub fn gemm_sums_overwrite<T: GemmScalar>(
    dests: &mut [DestTile<'_, T>],
    a_terms: &[(T, MatRef<'_, T>)],
    b_terms: &[(T, MatRef<'_, T>)],
    params: &BlockingParams,
    ws: &mut GemmWorkspace<T>,
) {
    gemm_sums_impl(dests, a_terms, b_terms, params, ws, true)
}

fn gemm_sums_impl<T: GemmScalar>(
    dests: &mut [DestTile<'_, T>],
    a_terms: &[(T, MatRef<'_, T>)],
    b_terms: &[(T, MatRef<'_, T>)],
    params: &BlockingParams,
    ws: &mut GemmWorkspace<T>,
    overwrite: bool,
) {
    let (m, k, n) = check_shapes(dests, a_terms, b_terms);
    // The register tile is the kernel's property, not the caller's: pack
    // micro-panels for `T`'s kernel, keep the caller's cache blocking.
    let params = params.with_register_tile(T::MR, T::NR);
    params.validate().expect("invalid blocking parameters");
    ws.ensure(&params);
    let mut raw: Vec<RawDest<T>> = dests.iter_mut().map(|d| d.raw()).collect();
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if overwrite {
            for d in dests {
                d.view.fill(T::ZERO);
            }
        }
        return;
    }
    let ukr = T::micro_kernel();

    let mut jc = 0;
    while jc < n {
        let nb = params.nc.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kb = params.kc.min(k - pc);
            // Loop 4 body: pack (the sum of) B into B̃.
            let b_slices: Vec<(T, MatRef<'_, T>)> =
                b_terms.iter().map(|(g, b)| (*g, b.submatrix(pc, jc, kb, nb))).collect();
            let t_pack = crate::obs_hooks::phase_start();
            pack::pack_b_sum(&mut ws.bbuf, &b_slices, params.nr);
            crate::obs_hooks::pack_done(t_pack);
            // First k-panel overwrites if requested; later panels accumulate.
            let store = overwrite && pc == 0;

            let mut ic = 0;
            while ic < m {
                let mb = params.mc.min(m - ic);
                // Loop 3 body: pack (the sum of) A into Ã.
                let a_slices: Vec<(T, MatRef<'_, T>)> =
                    a_terms.iter().map(|(g, a)| (*g, a.submatrix(ic, pc, mb, kb))).collect();
                let t_pack = crate::obs_hooks::phase_start();
                pack::pack_a_sum(&mut ws.abuf, &a_slices, params.mr);
                crate::obs_hooks::pack_done(t_pack);

                let t_kernel = crate::obs_hooks::phase_start();
                macro_kernel(&mut raw, &ws.abuf, &ws.bbuf, ic, jc, mb, nb, kb, ukr, store);
                crate::obs_hooks::kernel_done(t_kernel);
                ic += params.mc;
            }
            pc += params.kc;
        }
        jc += params.nc;
    }
}

/// Loops 2 and 1: sweep `nr x mr` micro-tiles of the current block, run the
/// micro-kernel, and scatter the accumulator into every destination.
#[allow(clippy::too_many_arguments)]
pub(crate) fn macro_kernel<T: GemmScalar>(
    dests: &mut [RawDest<T>],
    abuf: &[T],
    bbuf: &[T],
    ic: usize,
    jc: usize,
    mb: usize,
    nb: usize,
    kb: usize,
    ukr: MicroKernelFn<T>,
    store: bool,
) {
    let (mr, nr) = (T::MR, T::NR);
    debug_assert!(mr * nr <= ACC_CAP);
    let mut jr = 0;
    while jr < nb {
        let nr_eff = nr.min(nb - jr);
        let bpanel = &bbuf[(jr / nr) * nr * kb..];
        let mut ir = 0;
        while ir < mb {
            let mr_eff = mr.min(mb - ir);
            let apanel = &abuf[(ir / mr) * mr * kb..];
            // Stack accumulator sized for the largest supported tile; the
            // kernel touches only its own `mr * nr` prefix.
            let mut acc = [T::ZERO; ACC_CAP];
            // SAFETY: packed panels hold kb * mr and kb * nr elements
            // (zero-padded), as produced by pack_a_sum / pack_b_sum, and
            // `acc` has at least mr * nr writable elements.
            unsafe { ukr(kb, apanel.as_ptr(), bpanel.as_ptr(), acc.as_mut_ptr()) };
            for d in dests.iter() {
                // SAFETY: ic + mr_eff <= m and jc + nr_eff <= n for every
                // destination (shapes checked at entry); distinct (i, j)
                // address distinct elements per the MatMut contract.
                unsafe { apply_tile(d, ic + ir, jc + jr, mr_eff, nr_eff, &acc, store) };
            }
            ir += mr;
        }
        jr += nr;
    }
}

/// Add (or store) `coeff * acc[0..mr_eff, 0..nr_eff]` at `(i0, j0)` of `d`.
///
/// # Safety
/// `(i0 + mr_eff, j0 + nr_eff)` must be within `d`'s bounds and no other
/// thread may concurrently touch those elements.
unsafe fn apply_tile<T: GemmScalar>(
    d: &RawDest<T>,
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
    acc: &[T; ACC_CAP],
    store: bool,
) {
    debug_assert!(i0 + mr_eff <= d.rows && j0 + nr_eff <= d.cols);
    let mr = T::MR;
    let w = d.coeff;
    for j in 0..nr_eff {
        // SAFETY: every offset below stays inside the `mr_eff x nr_eff`
        // tile at `(i0, j0)`, in-bounds and exclusively owned per the
        // caller's contract.
        unsafe {
            let colbase = d.ptr.offset((i0 as isize) * d.rs + (j0 + j) as isize * d.cs);
            if d.rs == 1 {
                let src = &acc[j * mr..j * mr + mr_eff];
                if store {
                    for (i, &v) in src.iter().enumerate() {
                        *colbase.add(i) = w * v;
                    }
                } else {
                    for (i, &v) in src.iter().enumerate() {
                        *colbase.add(i) += w * v;
                    }
                }
            } else {
                for i in 0..mr_eff {
                    let p = colbase.offset(i as isize * d.rs);
                    let v = w * acc[i + j * mr];
                    if store {
                        *p = v;
                    } else {
                        *p += v;
                    }
                }
            }
        }
    }
}

pub(crate) fn check_shapes<T: Scalar>(
    dests: &[DestTile<'_, T>],
    a_terms: &[(T, MatRef<'_, T>)],
    b_terms: &[(T, MatRef<'_, T>)],
) -> (usize, usize, usize) {
    let (m, k) = {
        let first = a_terms.first().expect("gemm_sums: at least one A term");
        (first.1.rows(), first.1.cols())
    };
    for (_, a) in a_terms {
        assert_eq!((a.rows(), a.cols()), (m, k), "A terms shape mismatch");
    }
    let n = {
        let first = b_terms.first().expect("gemm_sums: at least one B term");
        assert_eq!(first.1.rows(), k, "A/B inner dimension mismatch");
        first.1.cols()
    };
    for (_, b) in b_terms {
        assert_eq!((b.rows(), b.cols()), (k, n), "B terms shape mismatch");
    }
    assert!(!dests.is_empty(), "gemm_sums: at least one destination");
    for d in dests {
        assert_eq!(d.shape(), (m, n), "destination shape mismatch");
    }
    (m, k, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use fmm_dense::{fill, norms, Matrix};

    fn run_gemm(m: usize, k: usize, n: usize, params: &BlockingParams) {
        let a = fill::bench_workload(m, k, 11);
        let b = fill::bench_workload(k, n, 22);
        let mut c = fill::bench_workload(m, n, 33);
        let mut c_ref = c.clone();

        let mut ws = GemmWorkspace::for_params(params);
        gemm_sums(
            &mut [DestTile::new(c.as_mut(), 1.0)],
            &[(1.0, a.as_ref())],
            &[(1.0, b.as_ref())],
            params,
            &mut ws,
        );
        reference::matmul_into(c_ref.as_mut(), a.as_ref(), b.as_ref());
        let err = norms::max_abs_diff(c.as_ref(), c_ref.as_ref());
        assert!(err < 1e-11 * (k as f64).max(1.0), "m={m} k={k} n={n}: err={err}");
    }

    #[test]
    fn matches_reference_on_blocked_sizes() {
        let p = BlockingParams::tiny();
        run_gemm(16, 8, 12, &p); // exactly one block each
        run_gemm(32, 16, 24, &p); // multiple full blocks
    }

    #[test]
    fn matches_reference_on_ragged_sizes() {
        let p = BlockingParams::tiny();
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (17, 9, 13), (33, 17, 29), (40, 1, 7)] {
            run_gemm(m, k, n, &p);
        }
    }

    #[test]
    fn matches_reference_with_default_params() {
        run_gemm(150, 300, 70, &BlockingParams::default());
    }

    #[test]
    fn empty_dims_are_noops() {
        let p = BlockingParams::tiny();
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 4);
        let mut c = Matrix::zeros(0, 4);
        let mut ws = GemmWorkspace::for_params(&p);
        gemm_sums(
            &mut [DestTile::new(c.as_mut(), 1.0)],
            &[(1.0, a.as_ref())],
            &[(1.0, b.as_ref())],
            &p,
            &mut ws,
        );
    }

    #[test]
    fn k_zero_overwrite_zeroes_dest() {
        let p = BlockingParams::tiny();
        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(0, 4);
        let mut c = Matrix::filled(4, 4, 7.0);
        let mut ws = GemmWorkspace::for_params(&p);
        gemm_sums_overwrite(
            &mut [DestTile::new(c.as_mut(), 1.0)],
            &[(1.0, a.as_ref())],
            &[(1.0, b.as_ref())],
            &p,
            &mut ws,
        );
        assert_eq!(c, Matrix::zeros(4, 4));
    }

    #[test]
    fn operand_sums_match_explicit_sums() {
        // (A0 - A1) * (B0 + 2 B1) computed via packing sums vs explicitly.
        let m = 19;
        let k = 11;
        let n = 9;
        let a0 = fill::bench_workload(m, k, 1);
        let a1 = fill::bench_workload(m, k, 2);
        let b0 = fill::bench_workload(k, n, 3);
        let b1 = fill::bench_workload(k, n, 4);
        let p = BlockingParams::tiny();
        let mut ws = GemmWorkspace::for_params(&p);

        let mut c = Matrix::zeros(m, n);
        gemm_sums(
            &mut [DestTile::new(c.as_mut(), 1.0)],
            &[(1.0, a0.as_ref()), (-1.0, a1.as_ref())],
            &[(1.0, b0.as_ref()), (2.0, b1.as_ref())],
            &p,
            &mut ws,
        );

        let mut asum = Matrix::zeros(m, k);
        fmm_dense::ops::linear_combination(
            asum.as_mut(),
            &[(1.0, a0.as_ref()), (-1.0, a1.as_ref())],
        )
        .unwrap();
        let mut bsum = Matrix::zeros(k, n);
        fmm_dense::ops::linear_combination(
            bsum.as_mut(),
            &[(1.0, b0.as_ref()), (2.0, b1.as_ref())],
        )
        .unwrap();
        let c_ref = reference::matmul(asum.as_ref(), bsum.as_ref());
        assert!(norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < 1e-12);
    }

    #[test]
    fn multi_destination_epilogue_scales_each_dest() {
        let m = 12;
        let k = 10;
        let n = 8;
        let a = fill::bench_workload(m, k, 5);
        let b = fill::bench_workload(k, n, 6);
        let p = BlockingParams::tiny();
        let mut ws = GemmWorkspace::for_params(&p);

        let mut c0 = Matrix::filled(m, n, 1.0);
        let mut c1 = Matrix::zeros(m, n);
        let mut c2 = Matrix::zeros(m, n);
        gemm_sums(
            &mut [
                DestTile::new(c0.as_mut(), 1.0),
                DestTile::new(c1.as_mut(), -1.0),
                DestTile::new(c2.as_mut(), 0.5),
            ],
            &[(1.0, a.as_ref())],
            &[(1.0, b.as_ref())],
            &p,
            &mut ws,
        );
        let prod = reference::matmul(a.as_ref(), b.as_ref());
        for j in 0..n {
            for i in 0..m {
                assert!((c0.get(i, j) - (1.0 + prod.get(i, j))).abs() < 1e-12);
                assert!((c1.get(i, j) + prod.get(i, j)).abs() < 1e-12);
                assert!((c2.get(i, j) - 0.5 * prod.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn overwrite_ignores_prior_contents_across_k_panels() {
        // k spans multiple kc panels: only the first panel may overwrite.
        let p = BlockingParams::tiny(); // kc = 8
        let m = 9;
        let k = 25;
        let n = 5;
        let a = fill::bench_workload(m, k, 7);
        let b = fill::bench_workload(k, n, 8);
        let mut c = Matrix::filled(m, n, 123.0);
        let mut ws = GemmWorkspace::for_params(&p);
        gemm_sums_overwrite(
            &mut [DestTile::new(c.as_mut(), 1.0)],
            &[(1.0, a.as_ref())],
            &[(1.0, b.as_ref())],
            &p,
            &mut ws,
        );
        let c_ref = reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < 1e-12);
    }

    #[test]
    fn destinations_as_submatrices_of_one_allocation() {
        // Mimics FMM: two quadrants of one C updated from one product.
        let p = BlockingParams::tiny();
        let a = fill::bench_workload(6, 6, 9);
        let b = fill::bench_workload(6, 6, 10);
        let mut c = Matrix::zeros(12, 12);
        let mut ws = GemmWorkspace::for_params(&p);
        {
            let (top, bottom) = c.as_mut().split_rows(6);
            let (c00, _) = top.split_cols(6);
            let (_, c11) = bottom.split_cols(6);
            gemm_sums(
                &mut [DestTile::new(c00, 1.0), DestTile::new(c11, -1.0)],
                &[(1.0, a.as_ref())],
                &[(1.0, b.as_ref())],
                &p,
                &mut ws,
            );
        }
        let prod = reference::matmul(a.as_ref(), b.as_ref());
        for j in 0..6 {
            for i in 0..6 {
                assert!((c.get(i, j) - prod.get(i, j)).abs() < 1e-12);
                assert!((c.get(i + 6, j + 6) + prod.get(i, j)).abs() < 1e-12);
                assert_eq!(c.get(i + 6, j), 0.0);
                assert_eq!(c.get(i, j + 6), 0.0);
            }
        }
    }

    #[test]
    fn f32_gemm_matches_f64_reference() {
        // The f32 driver (16x4 kernel, f32 packing) against the same
        // product computed in f64, at the f32-derived bound.
        use fmm_dense::Scalar;
        for (m, k, n) in [(37, 29, 41), (64, 64, 64), (16, 100, 8)] {
            let a = fill::bench_workload_t::<f32>(m, k, 11);
            let b = fill::bench_workload_t::<f32>(k, n, 22);
            let mut c = Matrix::<f32>::zeros(m, n);
            let mut ws = GemmWorkspace::<f32>::for_params(&BlockingParams::tiny());
            gemm_sums(
                &mut [DestTile::new(c.as_mut(), 1.0f32)],
                &[(1.0f32, a.as_ref())],
                &[(1.0f32, b.as_ref())],
                &BlockingParams::tiny(),
                &mut ws,
            );
            let c_ref = reference::matmul(a.cast::<f64>().as_ref(), b.cast::<f64>().as_ref());
            let err = norms::rel_error(c.cast::<f64>().as_ref(), c_ref.as_ref());
            let bound = <f32 as Scalar>::accuracy_bound(k, 0);
            assert!(err < bound, "m={m} k={k} n={n}: err={err} bound={bound}");
        }
    }

    #[test]
    #[should_panic(expected = "destination shape mismatch")]
    fn dest_shape_mismatch_panics() {
        let a = Matrix::zeros(4, 4);
        let b = Matrix::zeros(4, 4);
        let mut c = Matrix::zeros(5, 4);
        let p = BlockingParams::tiny();
        let mut ws = GemmWorkspace::for_params(&p);
        gemm_sums(
            &mut [DestTile::new(c.as_mut(), 1.0)],
            &[(1.0, a.as_ref())],
            &[(1.0, b.as_ref())],
            &p,
            &mut ws,
        );
    }
}
