//! Packing routines, including packing of *linear combinations* of
//! submatrices — the key primitive that lets FMM ride on GEMM (paper Fig. 1,
//! right: "Pack X + Y -> Ã", "Pack V + W -> B̃").
//!
//! # Packed layouts
//!
//! **A block** (`mb x kb`, register rows `mr`): stored as `ceil(mb/mr)`
//! micro-panels. Panel `q` holds rows `[q*mr, q*mr + mr)`; within a panel the
//! storage is `p`-major: for each depth index `p` in `[0, kb)` the `mr` row
//! values are contiguous. Rows beyond `mb` are zero-padded so the
//! micro-kernel never needs a row bound.
//!
//! **B panel** (`kb x nb`, register columns `nr`): `ceil(nb/nr)` micro-panels;
//! panel `q` holds columns `[q*nr, q*nr + nr)`, `p`-major with `nr`
//! contiguous column values per depth index, zero-padded past `nb`.
//!
//! Packing runs on every warm request, so this file carries `fmm-check`'s
//! `contract(warm-alloc-free)`: no `Vec::new`/`vec!`/`Box::new`/`format!`
//! etc. outside tests (see README § Static analysis). Destinations are
//! always caller-provided slices carved from pooled arenas.

// fmm-check: contract(warm-alloc-free)

use fmm_dense::{MatRef, Scalar};

/// Pack `sum_t terms[t].0 * terms[t].1` (all of shape `mb x kb`) into `dst`
/// using the packed-A micro-panel layout with register blocking `mr`.
///
/// With a single term of coefficient 1.0 this is exactly the BLIS `packm`
/// operation; with several terms it implements the AB/ABC-variant
/// pack-and-add at the same memory traffic as a plain pack.
pub fn pack_a_sum<T: Scalar>(dst: &mut [T], terms: &[(T, MatRef<'_, T>)], mr: usize) {
    let (mb, kb) = shape_of(terms);
    let panels = mb.div_ceil(mr);
    assert!(dst.len() >= panels * mr * kb, "pack_a_sum: dst too small");
    match terms {
        [] => dst[..panels * mr * kb].fill(T::ZERO),
        [(g, a)] if *g == T::ONE => pack_a_one(dst, *a, mr),
        _ => pack_a_many(dst, terms, mr),
    }
}

fn pack_a_one<T: Scalar>(dst: &mut [T], a: MatRef<'_, T>, mr: usize) {
    let (mb, kb) = (a.rows(), a.cols());
    let panels = mb.div_ceil(mr);
    for q in 0..panels {
        let i0 = q * mr;
        let rows = mr.min(mb - i0);
        let base = q * mr * kb;
        if a.row_stride() == 1 && rows == mr {
            // Full panel over contiguous columns: copy mr-length column
            // segments directly.
            for p in 0..kb {
                // SAFETY: (i0 + i, p) in bounds for i < mr = rows.
                unsafe {
                    let src = a.as_ptr().offset(i0 as isize + p as isize * a.col_stride());
                    let d = dst.as_mut_ptr().add(base + p * mr);
                    std::ptr::copy_nonoverlapping(src, d, mr);
                }
            }
        } else {
            for p in 0..kb {
                for i in 0..rows {
                    // SAFETY: i0 + i < mb, p < kb.
                    dst[base + p * mr + i] = unsafe { a.at_unchecked(i0 + i, p) };
                }
                for i in rows..mr {
                    dst[base + p * mr + i] = T::ZERO;
                }
            }
        }
    }
}

fn pack_a_many<T: Scalar>(dst: &mut [T], terms: &[(T, MatRef<'_, T>)], mr: usize) {
    let (mb, kb) = shape_of(terms);
    let panels = mb.div_ceil(mr);
    for q in 0..panels {
        let i0 = q * mr;
        let rows = mr.min(mb - i0);
        let base = q * mr * kb;
        for p in 0..kb {
            for i in 0..rows {
                let mut acc = T::ZERO;
                for (g, a) in terms {
                    // SAFETY: i0 + i < mb, p < kb, all terms share the shape.
                    acc += *g * unsafe { a.at_unchecked(i0 + i, p) };
                }
                dst[base + p * mr + i] = acc;
            }
            for i in rows..mr {
                dst[base + p * mr + i] = T::ZERO;
            }
        }
    }
}

/// Pack `sum_t terms[t].0 * terms[t].1` (all of shape `kb x nb`) into `dst`
/// using the packed-B micro-panel layout with register blocking `nr`.
pub fn pack_b_sum<T: Scalar>(dst: &mut [T], terms: &[(T, MatRef<'_, T>)], nr: usize) {
    let (kb, nb) = shape_of(terms);
    let panels = nb.div_ceil(nr);
    assert!(dst.len() >= panels * nr * kb, "pack_b_sum: dst too small");
    match terms {
        [] => dst[..panels * nr * kb].fill(T::ZERO),
        [(g, b)] if *g == T::ONE => pack_b_one(dst, *b, nr),
        _ => pack_b_many(dst, terms, nr),
    }
}

fn pack_b_one<T: Scalar>(dst: &mut [T], b: MatRef<'_, T>, nr: usize) {
    let (kb, nb) = (b.rows(), b.cols());
    let panels = nb.div_ceil(nr);
    for q in 0..panels {
        let j0 = q * nr;
        let cols = nr.min(nb - j0);
        let base = q * nr * kb;
        for p in 0..kb {
            for j in 0..cols {
                // SAFETY: p < kb, j0 + j < nb.
                dst[base + p * nr + j] = unsafe { b.at_unchecked(p, j0 + j) };
            }
            for j in cols..nr {
                dst[base + p * nr + j] = T::ZERO;
            }
        }
    }
}

fn pack_b_many<T: Scalar>(dst: &mut [T], terms: &[(T, MatRef<'_, T>)], nr: usize) {
    let (kb, nb) = shape_of(terms);
    let panels = nb.div_ceil(nr);
    for q in 0..panels {
        let j0 = q * nr;
        let cols = nr.min(nb - j0);
        let base = q * nr * kb;
        for p in 0..kb {
            for j in 0..cols {
                let mut acc = T::ZERO;
                for (g, b) in terms {
                    // SAFETY: p < kb, j0 + j < nb, shared shape.
                    acc += *g * unsafe { b.at_unchecked(p, j0 + j) };
                }
                dst[base + p * nr + j] = acc;
            }
            for j in cols..nr {
                dst[base + p * nr + j] = T::ZERO;
            }
        }
    }
}

fn shape_of<T: Scalar>(terms: &[(T, MatRef<'_, T>)]) -> (usize, usize) {
    let first = terms.first().expect("pack: at least one term required for shape");
    let shape = (first.1.rows(), first.1.cols());
    for (_, t) in terms {
        assert_eq!((t.rows(), t.cols()), shape, "pack: operand term shapes differ");
    }
    shape
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_dense::{fill, Matrix};

    fn unpack_a(packed: &[f64], mb: usize, kb: usize, mr: usize) -> Matrix {
        let mut m = Matrix::zeros(mb, kb);
        for q in 0..mb.div_ceil(mr) {
            for p in 0..kb {
                for i in 0..mr {
                    let gi = q * mr + i;
                    if gi < mb {
                        m.set(gi, p, packed[q * mr * kb + p * mr + i]);
                    }
                }
            }
        }
        m
    }

    fn unpack_b(packed: &[f64], kb: usize, nb: usize, nr: usize) -> Matrix {
        let mut m = Matrix::zeros(kb, nb);
        for q in 0..nb.div_ceil(nr) {
            for p in 0..kb {
                for j in 0..nr {
                    let gj = q * nr + j;
                    if gj < nb {
                        m.set(p, gj, packed[q * nr * kb + p * nr + j]);
                    }
                }
            }
        }
        m
    }

    #[test]
    fn pack_a_single_term_roundtrips() {
        let a = fill::counter(13, 7); // 13 rows: one full + one partial panel at mr=8
        let mut dst = vec![f64::NAN; 16 * 7];
        pack_a_sum(&mut dst, &[(1.0, a.as_ref())], 8);
        assert_eq!(unpack_a(&dst, 13, 7, 8), a);
        // Zero padding of the partial panel.
        for p in 0..7 {
            for i in 5..8 {
                assert_eq!(dst[8 * 7 + p * 8 + i], 0.0, "pad at p={p} i={i}");
            }
        }
    }

    #[test]
    fn pack_a_sum_of_three_matches_linear_combination() {
        let x = fill::bench_workload(10, 6, 1);
        let y = fill::bench_workload(10, 6, 2);
        let z = fill::bench_workload(10, 6, 3);
        let mut dst = vec![0.0; 16 * 6];
        pack_a_sum(&mut dst, &[(1.0, x.as_ref()), (-1.0, y.as_ref()), (0.5, z.as_ref())], 8);
        let got = unpack_a(&dst, 10, 6, 8);
        for j in 0..6 {
            for i in 0..10 {
                let expect = x.get(i, j) - y.get(i, j) + 0.5 * z.get(i, j);
                assert!((got.get(i, j) - expect).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn pack_a_strided_view_matches_dense() {
        let big = fill::counter(20, 20);
        let sub = big.as_ref().submatrix(3, 5, 9, 6);
        let mut dst = vec![0.0; 16 * 6];
        pack_a_sum(&mut dst, &[(1.0, sub)], 8);
        assert_eq!(unpack_a(&dst, 9, 6, 8), sub.to_owned());
    }

    #[test]
    fn pack_a_transposed_view_packs_transpose() {
        let a = fill::counter(6, 9);
        let mut dst = vec![0.0; 16 * 6];
        pack_a_sum(&mut dst, &[(1.0, a.as_ref().t())], 8);
        assert_eq!(unpack_a(&dst, 9, 6, 8), a.transposed());
    }

    #[test]
    fn pack_b_single_term_roundtrips() {
        let b = fill::counter(5, 11); // 11 cols at nr=4: 2 full + 1 partial panel
        let mut dst = vec![f64::NAN; 12 * 5];
        pack_b_sum(&mut dst, &[(1.0, b.as_ref())], 4);
        assert_eq!(unpack_b(&dst, 5, 11, 4), b);
        // Padding columns of the last panel are zero.
        for p in 0..5 {
            assert_eq!(dst[2 * 4 * 5 + p * 4 + 3], 0.0);
        }
    }

    #[test]
    fn pack_b_sum_matches_linear_combination() {
        let v = fill::bench_workload(7, 9, 4);
        let w = fill::bench_workload(7, 9, 5);
        let mut dst = vec![0.0; 12 * 7];
        pack_b_sum(&mut dst, &[(2.0, v.as_ref()), (-1.0, w.as_ref())], 4);
        let got = unpack_b(&dst, 7, 9, 4);
        for j in 0..9 {
            for i in 0..7 {
                let expect = 2.0 * v.get(i, j) - w.get(i, j);
                assert!((got.get(i, j) - expect).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn pack_exact_multiple_has_no_padding_rows() {
        let a = fill::counter(16, 4);
        let mut dst = vec![f64::NAN; 16 * 4];
        pack_a_sum(&mut dst, &[(1.0, a.as_ref())], 8);
        assert!(dst.iter().all(|v| !v.is_nan()));
        assert_eq!(unpack_a(&dst, 16, 4, 8), a);
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn mismatched_term_shapes_panic() {
        let x = Matrix::zeros(4, 4);
        let y = Matrix::zeros(4, 5);
        let mut dst = vec![0.0; 64];
        pack_a_sum(&mut dst, &[(1.0, x.as_ref()), (1.0, y.as_ref())], 8);
    }
}
