//! Pack-vs-kernel attribution for the observability layer.
//!
//! The paper's performance argument is about where GEMM time goes —
//! operand packing versus micro-kernel FLOPs — so both drivers time
//! each `pack_*_sum` and `macro_kernel` call and record the duration
//! into the process-global histograms `fmm_gemm_pack_nanos` /
//! `fmm_gemm_kernel_nanos`. Timing is always on: one clock read per
//! block-sized call plus four relaxed atomics, noise next to the work
//! being timed. Span events additionally land in the trace ring when
//! tracing is enabled, stamped with the request id the current thread
//! is serving (see `fmm_obs::trace::set_current_request`).

use fmm_obs::trace::{self, SpanEvent, SpanKind};
use fmm_obs::Histogram;
use std::sync::{Arc, OnceLock};

fn pack_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| fmm_obs::global().histogram("fmm_gemm_pack_nanos"))
}

fn kernel_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| fmm_obs::global().histogram("fmm_gemm_kernel_nanos"))
}

/// Open a phase: monotonic nanos on the shared trace clock.
#[inline]
pub(crate) fn phase_start() -> u64 {
    trace::now_nanos()
}

#[inline]
fn phase_end(kind: SpanKind, hist: &Histogram, start_nanos: u64) {
    let end_nanos = trace::now_nanos();
    hist.record(end_nanos.saturating_sub(start_nanos));
    if trace::enabled() {
        trace::record(SpanEvent {
            kind,
            request_id: trace::current_request(),
            start_nanos,
            end_nanos,
            thread: 0,
        });
    }
}

/// Close a packing phase opened by [`phase_start`].
#[inline]
pub(crate) fn pack_done(start_nanos: u64) {
    phase_end(SpanKind::Pack, pack_hist(), start_nanos);
}

/// Close a macro-kernel phase opened by [`phase_start`].
#[inline]
pub(crate) fn kernel_done(start_nanos: u64) {
    phase_end(SpanKind::Kernel, kernel_hist(), start_nanos);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_gemm_feeds_pack_and_kernel_histograms() {
        use crate::{driver::DestTile, gemm_sums, params::BlockingParams, GemmWorkspace};
        use fmm_dense::{fill, Matrix};
        let before_pack = pack_hist().count();
        let before_kernel = kernel_hist().count();
        let a = fill::bench_workload(24, 16, 1);
        let b = fill::bench_workload(16, 24, 2);
        let mut c = Matrix::zeros(24, 24);
        let p = BlockingParams::tiny();
        let mut ws = GemmWorkspace::for_params(&p);
        gemm_sums(
            &mut [DestTile::new(c.as_mut(), 1.0)],
            &[(1.0, a.as_ref())],
            &[(1.0, b.as_ref())],
            &p,
            &mut ws,
        );
        assert!(pack_hist().count() > before_pack, "pack phase not attributed");
        assert!(kernel_hist().count() > before_kernel, "kernel phase not attributed");
    }
}
