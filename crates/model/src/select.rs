//! Model-guided implementation selection (paper §4.4).
//!
//! Given a problem size and a set of candidate `(plan, variant)` pairs, the
//! model ranks all candidates by predicted time. The paper's protocol takes
//! the *top two* predictions and measures both in practice (fringe effects
//! are not modeled), keeping the faster — [`top_two`] supports exactly that
//! poly-algorithm workflow.

use crate::arch::ArchParams;
use crate::predict::{predict_fmm, Prediction};
use crate::Impl;
use fmm_core::counts::PlanCounts;
use fmm_core::FmmPlan;
use std::sync::Arc;

/// One ranked candidate implementation.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The plan (`None` encodes plain GEMM).
    pub plan: Option<Arc<FmmPlan>>,
    /// Which implementation strategy.
    pub impl_: Impl,
    /// Model prediction for the problem the ranking was computed for.
    pub prediction: Prediction,
}

impl Candidate {
    /// Short display string, e.g. `"<2,2,2>+<3,3,3> ABC"`.
    pub fn describe(&self) -> String {
        match &self.plan {
            Some(p) => format!("{} {}", p.describe(), self.impl_.name()),
            None => "GEMM".to_string(),
        }
    }
}

/// Rank every `(plan, variant)` pair (plus plain GEMM) by predicted total
/// time, fastest first.
pub fn rank_candidates(
    m: usize,
    k: usize,
    n: usize,
    plans: &[Arc<FmmPlan>],
    variants: &[Impl],
    arch: &ArchParams,
    include_gemm: bool,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    if include_gemm {
        out.push(Candidate {
            plan: None,
            impl_: Impl::Gemm,
            prediction: crate::predict::predict_gemm(m, k, n, arch),
        });
    }
    for plan in plans {
        let counts = PlanCounts::of(plan);
        for &v in variants {
            if v == Impl::Gemm {
                continue;
            }
            out.push(Candidate {
                plan: Some(plan.clone()),
                impl_: v,
                prediction: predict_fmm(v, &counts, m, k, n, arch),
            });
        }
    }
    out.sort_by(|a, b| {
        a.prediction.total.partial_cmp(&b.prediction.total).expect("predictions are finite")
    });
    out
}

/// The paper's §4.4 protocol: the two best-predicted candidates, to be
/// measured empirically by the caller.
pub fn top_two(
    m: usize,
    k: usize,
    n: usize,
    plans: &[Arc<FmmPlan>],
    variants: &[Impl],
    arch: &ArchParams,
) -> (Candidate, Option<Candidate>) {
    let ranked = rank_candidates(m, k, n, plans, variants, arch, false);
    let mut it = ranked.into_iter();
    let first = it.next().expect("at least one candidate required");
    (first, it.next())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_core::registry;

    fn plans() -> Vec<Arc<FmmPlan>> {
        let s = registry::strassen();
        vec![Arc::new(FmmPlan::new(vec![s.clone()])), Arc::new(FmmPlan::uniform(s, 2))]
    }

    #[test]
    fn ranking_is_sorted_by_time() {
        let arch = ArchParams::paper_machine();
        let ranked = rank_candidates(8000, 8000, 8000, &plans(), &Impl::FMM_VARIANTS, &arch, true);
        assert_eq!(ranked.len(), 7); // GEMM + 2 plans x 3 variants
        for pair in ranked.windows(2) {
            assert!(pair[0].prediction.total <= pair[1].prediction.total);
        }
    }

    #[test]
    fn rank_k_update_selects_abc_with_one_level_in_top_two() {
        // The paper's headline claim: for rank-k updates, ABC is the right
        // variant. The model ranks the two ABC plans first; the §4.4
        // protocol then measures both (fringe and cache effects, which the
        // model omits, decide between one- and two-level in practice).
        let arch = ArchParams::paper_machine();
        let (best, second) = top_two(14400, 480, 14400, &plans(), &Impl::FMM_VARIANTS, &arch);
        let second = second.expect("two candidates available");
        assert_eq!(best.impl_, Impl::Abc, "best = {}", best.describe());
        assert_eq!(second.impl_, Impl::Abc, "second = {}", second.describe());
        let levels: Vec<usize> =
            [&best, &second].iter().map(|c| c.plan.as_ref().unwrap().num_levels()).collect();
        assert!(levels.contains(&1), "one-level plan must reach the measured top-2");
    }

    #[test]
    fn huge_square_prefers_two_level() {
        let arch = ArchParams::paper_machine();
        let ranked =
            rank_candidates(14400, 14400, 14400, &plans(), &Impl::FMM_VARIANTS, &arch, false);
        assert_eq!(ranked[0].plan.as_ref().unwrap().num_levels(), 2);
    }

    #[test]
    fn gemm_wins_tiny_and_skinny_problems() {
        let arch = ArchParams::paper_machine();
        // Tiny cube: additions/packing overhead swamps the 1/8 saving.
        let ranked = rank_candidates(96, 96, 96, &plans(), &Impl::FMM_VARIANTS, &arch, true);
        assert_eq!(ranked[0].impl_, Impl::Gemm, "best = {}", ranked[0].describe());
        // Extremely skinny panel-panel product: bandwidth-bound, FMM's extra
        // operand traffic cannot pay for itself.
        let ranked = rank_candidates(64, 20000, 64, &plans(), &Impl::FMM_VARIANTS, &arch, true);
        assert_eq!(ranked[0].impl_, Impl::Gemm, "best = {}", ranked[0].describe());
    }

    #[test]
    fn describe_names_plan_and_variant() {
        let arch = ArchParams::paper_machine();
        let (best, second) = top_two(4000, 4000, 4000, &plans(), &Impl::FMM_VARIANTS, &arch);
        assert!(best.describe().contains("<2,2,2>"));
        assert!(second.is_some());
    }
}
