//! The generated performance model for FMM implementations (paper §4.2,
//! Figures 4 and 5).
//!
//! The model predicts total execution time `T = Ta + Tm` from:
//!
//! * architecture parameters `τ_a` (seconds per flop), `τ_b` (seconds per
//!   8-byte word moved from DRAM), and the prefetch efficiency `λ`
//!   ([`arch::ArchParams`]);
//! * the plan's static counts `R_L`, `nnz(⊗U)`, `nnz(⊗V)`, `nnz(⊗W)` and
//!   aggregate partition dims ([`fmm_core::counts::PlanCounts`]);
//! * the problem size `(m, k, n)` and the GEMM blocking parameters.
//!
//! [`terms`] transcribes the two coefficient tables of Figure 5 verbatim;
//! [`predict`] assembles them into per-variant predictions;
//! [`calibrate`] fits `τ_a`, `τ_b`, `λ` on the running machine;
//! [`select`] implements the paper's §4.4 model-guided choice of
//! implementation (top-2 candidates by predicted time).
//!
//! # Example
//!
//! ```
//! use fmm_core::{counts::PlanCounts, registry, FmmPlan};
//! use fmm_model::{arch::ArchParams, predict::predict_fmm, Impl};
//!
//! let plan = FmmPlan::new(vec![registry::strassen()]);
//! let arch = ArchParams::paper_machine();
//! let p = predict_fmm(Impl::Abc, &PlanCounts::of(&plan), 1024, 1024, 1024, &arch);
//! assert!(p.total > 0.0);
//! ```

pub mod arch;
pub mod calibrate;
pub mod parallel;
pub mod predict;
pub mod select;
pub mod terms;

pub use arch::ArchParams;
pub use fmm_core::tasks::Strategy;
pub use parallel::{
    predict_gemm_parallel, predict_parallel, predict_scheduled, rank_scheduled, ScheduledCandidate,
};
pub use predict::{predict_fmm, predict_gemm, Prediction};
pub use select::{rank_candidates, Candidate};

/// Which implementation the model is asked about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Impl {
    /// Plain blocked GEMM (the BLIS-style baseline).
    Gemm,
    /// Naive FMM (temporaries for operand sums and `M_r`).
    Naive,
    /// AB FMM (sums in packing, `M_r` materialized).
    Ab,
    /// ABC FMM (sums in packing, multi-destination micro-kernel).
    Abc,
}

impl Impl {
    /// The three FMM variants (excluding plain GEMM).
    pub const FMM_VARIANTS: [Impl; 3] = [Impl::Naive, Impl::Ab, Impl::Abc];

    /// Map from the executor's variant enum.
    pub fn from_variant(v: fmm_core::Variant) -> Self {
        match v {
            fmm_core::Variant::Naive => Impl::Naive,
            fmm_core::Variant::Ab => Impl::Ab,
            fmm_core::Variant::Abc => Impl::Abc,
        }
    }

    /// Map to the executor's variant enum (`None` for [`Impl::Gemm`]).
    pub fn to_variant(self) -> Option<fmm_core::Variant> {
        match self {
            Impl::Gemm => None,
            Impl::Naive => Some(fmm_core::Variant::Naive),
            Impl::Ab => Some(fmm_core::Variant::Ab),
            Impl::Abc => Some(fmm_core::Variant::Abc),
        }
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Impl::Gemm => "GEMM",
            Impl::Naive => "Naive",
            Impl::Ab => "AB",
            Impl::Abc => "ABC",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impl_variant_roundtrip() {
        for v in fmm_core::Variant::ALL {
            let i = Impl::from_variant(v);
            assert_eq!(i.to_variant(), Some(v));
        }
        assert_eq!(Impl::Gemm.to_variant(), None);
    }
}
