//! Architecture parameters for the performance model (paper Fig. 4).

use fmm_gemm::BlockingParams;

/// The machine description the model needs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArchParams {
    /// `τ_a`: seconds per floating-point operation (reciprocal of peak
    /// flops/s on the cores in use).
    pub tau_a: f64,
    /// `τ_b`: amortized seconds to move one 8-byte double from DRAM to
    /// cache (8 bytes / sustained bandwidth).
    pub tau_b: f64,
    /// `λ ∈ [0.5, 1]`: software-prefetch efficiency applied to the
    /// micro-kernel's C traffic; "adapted to match gemm performance"
    /// (paper §4.2).
    pub lambda: f64,
    /// GEMM blocking parameters, which set the packing-reuse ceilings
    /// (`⌈n/n_c⌉`, `⌈k/k_c⌉` factors in Fig. 5).
    pub mc: usize,
    /// `k_c` blocking parameter.
    pub kc: usize,
    /// `n_c` blocking parameter.
    pub nc: usize,
    /// Bytes per matrix element. `τ_b` is calibrated for 8-byte doubles;
    /// every memory term scales by `elem_bytes / 8`, so an `f32` engine
    /// (4 bytes) sees half the bandwidth cost per element — which is what
    /// shifts its rankings toward the memory-hungry variants later.
    pub elem_bytes: usize,
}

impl ArchParams {
    /// The paper's experiment machine (§5.1): one core of a Xeon E5-2680 v2
    /// at 3.54 GHz with AVX (8 flops/cycle -> 28.32 GFLOPS peak) and
    /// 59.7 GB/s peak bandwidth; blocking parameters
    /// `m_c, k_c, n_c = 96, 256, 4096`.
    pub fn paper_machine() -> Self {
        Self {
            tau_a: 1.0 / 28.32e9,
            tau_b: 8.0 / 59.7e9,
            lambda: 0.7,
            mc: 96,
            kc: 256,
            nc: 4096,
            elem_bytes: 8,
        }
    }

    /// Parameters from an observed GEMM rate (GFLOPS) and memory bandwidth
    /// (GB/s), with blocking from `params`.
    pub fn from_measurements(
        gemm_gflops: f64,
        bandwidth_gbs: f64,
        lambda: f64,
        params: &BlockingParams,
    ) -> Self {
        assert!(gemm_gflops > 0.0 && bandwidth_gbs > 0.0);
        Self {
            tau_a: 1.0 / (gemm_gflops * 1e9),
            tau_b: 8.0 / (bandwidth_gbs * 1e9),
            lambda,
            mc: params.mc,
            kc: params.kc,
            nc: params.nc,
            elem_bytes: 8,
        }
    }

    /// The same machine serving a different element width (e.g. 4 for an
    /// `f32` engine). `τ_b` stays per-8-bytes; the width scales the memory
    /// terms at prediction time.
    pub fn with_elem_bytes(self, elem_bytes: usize) -> Self {
        assert!(elem_bytes > 0, "elem_bytes must be positive");
        Self { elem_bytes, ..self }
    }

    /// Peak rate implied by `τ_a`, in GFLOPS.
    pub fn peak_gflops(&self) -> f64 {
        1.0 / self.tau_a / 1e9
    }

    /// Validate ranges (`λ` within the paper's `[0.5, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.tau_a > 0.0 && self.tau_b > 0.0) {
            return Err("tau_a and tau_b must be positive".into());
        }
        if !(0.5..=1.0).contains(&self.lambda) {
            return Err(format!("lambda {} outside [0.5, 1]", self.lambda));
        }
        if self.mc == 0 || self.kc == 0 || self.nc == 0 {
            return Err("blocking parameters must be positive".into());
        }
        if self.elem_bytes == 0 {
            return Err("elem_bytes must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_matches_section_5_1() {
        let a = ArchParams::paper_machine();
        assert!((a.peak_gflops() - 28.32).abs() < 1e-9);
        assert_eq!((a.mc, a.kc, a.nc), (96, 256, 4096));
        a.validate().unwrap();
    }

    #[test]
    fn from_measurements_inverts_rates() {
        let p = BlockingParams::default();
        let a = ArchParams::from_measurements(10.0, 20.0, 0.6, &p);
        assert!((a.peak_gflops() - 10.0).abs() < 1e-12);
        assert!((a.tau_b - 8.0 / 20.0e9).abs() < 1e-20);
        a.validate().unwrap();
    }

    #[test]
    fn elem_bytes_defaults_to_doubles_and_overrides() {
        let a = ArchParams::paper_machine();
        assert_eq!(a.elem_bytes, 8);
        let f32_arch = a.with_elem_bytes(4);
        assert_eq!(f32_arch.elem_bytes, 4);
        assert_eq!(f32_arch.tau_b, a.tau_b, "tau_b itself is width-independent");
        f32_arch.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_lambda() {
        let mut a = ArchParams::paper_machine();
        a.lambda = 0.2;
        assert!(a.validate().is_err());
        a.lambda = 1.5;
        assert!(a.validate().is_err());
    }
}
