//! Parallel execution-time prediction and `(variant, strategy)` ranking.
//!
//! The paper's model (§4.2) is sequential: `T = Ta + Tm`. Following Benson
//! & Ballard's analysis of parallel fast matrix multiplication (PPoPP
//! 2015), a schedule over `p` workers divides only the *arithmetic* term —
//! memory bandwidth is shared — and only as evenly as its task grain
//! allows:
//!
//! `T_par ≈ Ta · ⌈tasks/p⌉/tasks + Tm`
//!
//! where `tasks` is what the strategy fans out: the `⌈m_block/m_c⌉`
//! micro-panel row blocks of one product for DFS (the paper's loop-3 data
//! parallelism), the `R_L` submultiplications for BFS, and the `R_1`
//! level-1 products for hybrid. The quantization factor is the whole
//! story of why BFS wins small problems: a 256³ Strassen block product has
//! only ⌈128/96⌉ = 2 data-parallel row blocks — two workers saturate it —
//! while BFS has `R_L = 7` tasks to spread.
//!
//! Strategy changes the cost basis too: a BFS task must materialize `M_r`
//! (the ABC variant degrades to AB's memory profile), and a hybrid task
//! materializes level-1 operand sums (Naive's profile).

use crate::arch::ArchParams;
use crate::predict::{predict_fmm, predict_gemm, Prediction};
use crate::Impl;
use fmm_core::counts::PlanCounts;
use fmm_core::tasks::Strategy;
use fmm_core::FmmPlan;
use std::sync::Arc;

/// `⌈units/workers⌉ / units`: the fraction of the arithmetic the critical
/// worker executes when `units` equal tasks are dealt to `workers`.
fn chunked(units: usize, workers: usize) -> f64 {
    let units = units.max(1);
    let workers = workers.max(1);
    units.div_ceil(workers) as f64 / units as f64
}

/// Predict an FMM implementation executed as `strategy` over `workers`
/// workers. `r1` is the plan's level-1 rank (used by hybrid; pass the
/// total rank for one-level plans). With `workers == 1` and
/// [`Strategy::Dfs`] this reduces exactly to [`predict_fmm`].
#[allow(clippy::too_many_arguments)]
pub fn predict_parallel(
    impl_: Impl,
    counts: &PlanCounts,
    r1: usize,
    m: usize,
    k: usize,
    n: usize,
    arch: &ArchParams,
    workers: usize,
    strategy: Strategy,
) -> Prediction {
    if impl_ == Impl::Gemm {
        return predict_gemm_parallel(m, k, n, arch, workers);
    }
    let (basis, units) = match strategy {
        // Data parallelism inside each product: the ic loop over the
        // block problem's rows.
        Strategy::Dfs => (impl_, (m / counts.mt).div_ceil(arch.mc)),
        // Task per submultiplication; M_r must be materialized, so ABC
        // pays AB's memory profile.
        Strategy::Bfs => {
            let basis = if impl_ == Impl::Abc { Impl::Ab } else { impl_ };
            (basis, counts.r)
        }
        // Task per level-1 product with explicit level-1 operand sums:
        // Naive's memory profile, `R_1` tasks.
        Strategy::Hybrid => (Impl::Naive, r1),
    };
    let seq = predict_fmm(basis, counts, m, k, n, arch);
    Prediction::from_times(seq.arithmetic * chunked(units, workers), seq.memory, m, k, n)
}

/// Predict plain blocked GEMM with the `ic` loop parallelized over
/// `workers` (the engine's non-FMM execution path).
pub fn predict_gemm_parallel(
    m: usize,
    k: usize,
    n: usize,
    arch: &ArchParams,
    workers: usize,
) -> Prediction {
    let seq = predict_gemm(m, k, n, arch);
    let units = m.div_ceil(arch.mc);
    Prediction::from_times(seq.arithmetic * chunked(units, workers), seq.memory, m, k, n)
}

/// As [`predict_parallel`], reading the plan's counts and level-1 rank
/// directly.
#[allow(clippy::too_many_arguments)]
pub fn predict_scheduled(
    impl_: Impl,
    plan: &FmmPlan,
    m: usize,
    k: usize,
    n: usize,
    arch: &ArchParams,
    workers: usize,
    strategy: Strategy,
) -> Prediction {
    predict_parallel(
        impl_,
        &PlanCounts::of(plan),
        plan.first_level().rank(),
        m,
        k,
        n,
        arch,
        workers,
        strategy,
    )
}

/// One ranked `(plan, variant, strategy)` candidate.
#[derive(Clone, Debug)]
pub struct ScheduledCandidate {
    /// The plan (`None` encodes plain GEMM).
    pub plan: Option<Arc<FmmPlan>>,
    /// Which implementation strategy.
    pub impl_: Impl,
    /// Which schedule.
    pub strategy: Strategy,
    /// Model prediction for the ranked problem over the ranked workers.
    pub prediction: Prediction,
}

impl ScheduledCandidate {
    /// Short display string, e.g. `"<2,2,2>+<2,2,2> ABC BFS"`.
    pub fn describe(&self) -> String {
        match &self.plan {
            Some(p) => format!("{} {} {}", p.describe(), self.impl_.name(), self.strategy.name()),
            None => "GEMM".to_string(),
        }
    }
}

/// Rank every `(plan, variant, strategy)` triple (plus parallel GEMM) by
/// predicted total time over `workers` workers, fastest first. The sort is
/// stable and DFS candidates are generated first, so exact ties — e.g.
/// every strategy at `workers == 1` — resolve to the simplest schedule.
/// Hybrid candidates are skipped for one-level plans (the scheduler
/// delegates them to BFS, so ranking them separately would be noise).
#[allow(clippy::too_many_arguments)]
pub fn rank_scheduled(
    m: usize,
    k: usize,
    n: usize,
    plans: &[Arc<FmmPlan>],
    variants: &[Impl],
    arch: &ArchParams,
    workers: usize,
    include_gemm: bool,
) -> Vec<ScheduledCandidate> {
    let mut out = Vec::new();
    if include_gemm {
        out.push(ScheduledCandidate {
            plan: None,
            impl_: Impl::Gemm,
            strategy: Strategy::Dfs,
            prediction: predict_gemm_parallel(m, k, n, arch, workers),
        });
    }
    for plan in plans {
        let counts = PlanCounts::of(plan);
        let r1 = plan.first_level().rank();
        for &v in variants {
            if v == Impl::Gemm {
                continue;
            }
            for strategy in Strategy::ALL {
                if strategy == Strategy::Hybrid && plan.num_levels() == 1 {
                    continue;
                }
                out.push(ScheduledCandidate {
                    plan: Some(plan.clone()),
                    impl_: v,
                    strategy,
                    prediction: predict_parallel(v, &counts, r1, m, k, n, arch, workers, strategy),
                });
            }
        }
    }
    out.sort_by(|a, b| {
        a.prediction.total.partial_cmp(&b.prediction.total).expect("predictions are finite")
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_core::{registry, FmmPlan};

    fn arch() -> ArchParams {
        ArchParams::paper_machine()
    }

    fn plans() -> Vec<Arc<FmmPlan>> {
        let s = registry::strassen();
        vec![Arc::new(FmmPlan::new(vec![s.clone()])), Arc::new(FmmPlan::uniform(s, 2))]
    }

    #[test]
    fn one_worker_dfs_reduces_to_sequential_model() {
        let plan = FmmPlan::new(vec![registry::strassen()]);
        let counts = PlanCounts::of(&plan);
        for impl_ in Impl::FMM_VARIANTS {
            let seq = predict_fmm(impl_, &counts, 1024, 1024, 1024, &arch());
            let par = predict_scheduled(impl_, &plan, 1024, 1024, 1024, &arch(), 1, Strategy::Dfs);
            assert!((seq.total - par.total).abs() < 1e-15, "{}", impl_.name());
        }
    }

    #[test]
    fn single_worker_ranking_prefers_dfs() {
        // With one worker no strategy can win on time, and BFS/hybrid pay
        // materialization; ties resolve to DFS by stable sort.
        let ranked =
            rank_scheduled(2048, 2048, 2048, &plans(), &Impl::FMM_VARIANTS, &arch(), 1, false);
        assert_eq!(ranked[0].strategy, Strategy::Dfs, "best = {}", ranked[0].describe());
    }

    #[test]
    fn bfs_beats_dfs_for_small_problems_with_many_workers() {
        // The Benson–Ballard regime: at 256³ one Strassen block product
        // has ⌈128/96⌉ = 2 data-parallel row blocks, so DFS cannot use
        // more than two of eight workers; BFS spreads R = 7 tasks.
        let plan = Arc::new(FmmPlan::new(vec![registry::strassen()]));
        let dfs = predict_scheduled(Impl::Abc, &plan, 256, 256, 256, &arch(), 8, Strategy::Dfs);
        let bfs = predict_scheduled(Impl::Abc, &plan, 256, 256, 256, &arch(), 8, Strategy::Bfs);
        assert!(
            bfs.total < dfs.total,
            "BFS {} must beat DFS {} at 256^3 with 8 workers",
            bfs.total,
            dfs.total
        );
        // And the full ranking agrees: the best candidate is task-parallel.
        let ranked = rank_scheduled(256, 256, 256, &plans(), &Impl::FMM_VARIANTS, &arch(), 8, true);
        assert_ne!(ranked[0].strategy, Strategy::Dfs, "best = {}", ranked[0].describe());
    }

    #[test]
    fn dfs_recovers_for_large_rank_k_problems() {
        // The paper's headline rank-k shape at scale: a block product has
        // plenty of data-parallel row blocks (⌈7200/96⌉ = 75), so the DFS
        // quantization penalty vanishes, and BFS still forces ABC into
        // AB's memory profile — which loses badly at small k. DFS wins.
        let plan = Arc::new(FmmPlan::new(vec![registry::strassen()]));
        let (m, k, n) = (14400, 480, 14400);
        let dfs = predict_scheduled(Impl::Abc, &plan, m, k, n, &arch(), 8, Strategy::Dfs);
        let bfs = predict_scheduled(Impl::Abc, &plan, m, k, n, &arch(), 8, Strategy::Bfs);
        assert!(dfs.total < bfs.total, "DFS {} vs BFS {}", dfs.total, bfs.total);
    }

    #[test]
    fn hybrid_fans_out_level1_tasks_only() {
        // For a two-level plan, hybrid's grain is R_1 = 7, so its
        // arithmetic stops improving past 7 workers while BFS (R_L = 49)
        // keeps scaling.
        let plan = Arc::new(FmmPlan::uniform(registry::strassen(), 2));
        let h7 = predict_scheduled(Impl::Ab, &plan, 1024, 1024, 1024, &arch(), 7, Strategy::Hybrid);
        let h49 =
            predict_scheduled(Impl::Ab, &plan, 1024, 1024, 1024, &arch(), 49, Strategy::Hybrid);
        assert!((h7.arithmetic - h49.arithmetic).abs() < 1e-15, "hybrid saturates at R_1 workers");
        let b49 = predict_scheduled(Impl::Ab, &plan, 1024, 1024, 1024, &arch(), 49, Strategy::Bfs);
        assert!(b49.arithmetic < h49.arithmetic, "BFS keeps scaling past R_1");
    }

    #[test]
    fn gemm_parallel_prediction_scales_and_saturates() {
        let a = arch();
        let seq = predict_gemm_parallel(4800, 4800, 4800, &a, 1);
        let par = predict_gemm_parallel(4800, 4800, 4800, &a, 8);
        assert!(par.total < seq.total);
        assert!(par.arithmetic >= seq.arithmetic / 8.0 - 1e-15, "no superlinear speedup");
        // Fewer row blocks than workers -> extra workers do nothing.
        let tiny96 = predict_gemm_parallel(96, 4096, 96, &a, 1);
        let tiny96_par = predict_gemm_parallel(96, 4096, 96, &a, 16);
        assert!((tiny96.total - tiny96_par.total).abs() < 1e-15);
    }

    #[test]
    fn ranking_is_sorted_and_skips_hybrid_for_one_level() {
        let ranked =
            rank_scheduled(1024, 1024, 1024, &plans(), &Impl::FMM_VARIANTS, &arch(), 4, true);
        // GEMM + one-level (3 variants x 2 strategies) + two-level (3 x 3).
        assert_eq!(ranked.len(), 1 + 6 + 9);
        for pair in ranked.windows(2) {
            assert!(pair[0].prediction.total <= pair[1].prediction.total);
        }
        assert!(ranked
            .iter()
            .all(|c| c.strategy != Strategy::Hybrid || c.plan.as_ref().unwrap().num_levels() > 1));
    }
}
