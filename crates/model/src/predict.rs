//! Assembling Figure 5 into execution-time predictions (equations 1–4).

use crate::arch::ArchParams;
use crate::terms::{coeffs, Terms};
use crate::Impl;
use fmm_core::counts::{classical_flops, PlanCounts};

/// A model prediction for one implementation on one problem.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Arithmetic time `Ta` (seconds).
    pub arithmetic: f64,
    /// Memory time `Tm` (seconds).
    pub memory: f64,
    /// `T = Ta + Tm`.
    pub total: f64,
    /// Effective GFLOPS `2mnk / T / 1e9` (classical flops credited).
    pub effective_gflops: f64,
}

impl Prediction {
    pub(crate) fn from_times(arithmetic: f64, memory: f64, m: usize, k: usize, n: usize) -> Self {
        let total = arithmetic + memory;
        Self { arithmetic, memory, total, effective_gflops: classical_flops(m, k, n) / total / 1e9 }
    }

    /// Predicted total as integer nanoseconds, the currency of the
    /// decision-audit layer (`fmm_obs::audit`). Saturates at `u64::MAX`
    /// and clamps non-finite / negative predictions to 0.
    pub fn total_nanos(&self) -> u64 {
        let nanos = self.total * 1e9;
        if nanos.is_nan() || nanos <= 0.0 {
            0
        } else if nanos >= u64::MAX as f64 {
            u64::MAX
        } else {
            nanos as u64
        }
    }
}

/// Predict plain blocked GEMM (Figure 5's "gemm" column).
pub fn predict_gemm(m: usize, k: usize, n: usize, arch: &ArchParams) -> Prediction {
    let t = Terms::gemm(m, k, n, arch);
    // Coefficients: one multiplication, one pass of A/B packing traffic,
    // one C read/write stream.
    let ta = t.tx_a;
    let tm = t.ta_x_m + t.tb_x_m + t.tc_x_m;
    Prediction::from_times(ta, tm, m, k, n)
}

/// Predict an L-level FMM implementation from its plan counts
/// (equations 2–4 with the Figure 5 tables).
pub fn predict_fmm(
    impl_: Impl,
    counts: &PlanCounts,
    m: usize,
    k: usize,
    n: usize,
    arch: &ArchParams,
) -> Prediction {
    if impl_ == Impl::Gemm {
        return predict_gemm(m, k, n, arch);
    }
    let t = Terms::fmm(counts, m, k, n, arch);
    let c = coeffs(impl_, counts);
    let ta = c.nx_a as f64 * t.tx_a
        + c.na_plus_a as f64 * t.ta_plus_a
        + c.nb_plus_a as f64 * t.tb_plus_a
        + c.nc_plus_a as f64 * t.tc_plus_a;
    let tm = c.na_x_m as f64 * t.ta_x_m
        + c.nb_x_m as f64 * t.tb_x_m
        + c.nc_x_m as f64 * t.tc_x_m
        + c.na_plus_m as f64 * t.ta_plus_m
        + c.nb_plus_m as f64 * t.tb_plus_m
        + c.nc_plus_m as f64 * t.tc_plus_m;
    Prediction::from_times(ta, tm, m, k, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_core::{registry, FmmPlan};

    fn arch() -> ArchParams {
        ArchParams::paper_machine()
    }

    fn strassen_counts() -> PlanCounts {
        PlanCounts::of(&FmmPlan::new(vec![registry::strassen()]))
    }

    #[test]
    fn gemm_asymptote_is_peak() {
        // For huge square problems, GEMM's predicted rate approaches peak.
        let p = predict_gemm(16000, 16000, 16000, &arch());
        assert!(p.effective_gflops > 0.93 * arch().peak_gflops());
        assert!(p.effective_gflops <= arch().peak_gflops());
    }

    #[test]
    fn strassen_beats_gemm_on_large_square() {
        // Square 12000^3 (paper Fig. 6-like regime): one-level ABC should
        // exceed GEMM (theoretical x8/7, practical somewhat less).
        let c = strassen_counts();
        let g = predict_gemm(12000, 12000, 12000, &arch());
        let s = predict_fmm(Impl::Abc, &c, 12000, 12000, 12000, &arch());
        assert!(
            s.effective_gflops > 1.05 * g.effective_gflops,
            "strassen {} vs gemm {}",
            s.effective_gflops,
            g.effective_gflops
        );
        assert!(s.effective_gflops < (8.0 / 7.0) * arch().peak_gflops());
    }

    #[test]
    fn abc_wins_rank_k_ab_wins_large_k() {
        // Paper §4.3: "for small k, ABC performs best; when k is large,
        // AB/Naive perform better".
        let c = strassen_counts();
        let small_k = (14400, 480, 14400);
        let abc_s = predict_fmm(Impl::Abc, &c, small_k.0, small_k.1, small_k.2, &arch());
        let ab_s = predict_fmm(Impl::Ab, &c, small_k.0, small_k.1, small_k.2, &arch());
        let nv_s = predict_fmm(Impl::Naive, &c, small_k.0, small_k.1, small_k.2, &arch());
        assert!(abc_s.total < ab_s.total, "ABC must win rank-k updates");
        assert!(abc_s.total < nv_s.total);

        let large_k = (14400, 12000, 14400);
        let abc_l = predict_fmm(Impl::Abc, &c, large_k.0, large_k.1, large_k.2, &arch());
        let ab_l = predict_fmm(Impl::Ab, &c, large_k.0, large_k.1, large_k.2, &arch());
        assert!(ab_l.total < abc_l.total, "AB must win for large k");
    }

    #[test]
    fn naive_beats_abc_for_large_nnz_algorithms_at_scale() {
        // Paper §4.3 bullet 1: for <3,6,3> — whose published decomposition
        // has very dense U/V (hundreds of non-zeros) — Naive outperforms
        // ABC/AB at large sizes, because AB/ABC re-read the operands
        // nnz-many times in packing while Naive reads them only R_L times.
        // Counts modeled on Smirnov's <3,6,3>: R = 40, dense coefficients.
        let counts = PlanCounts { r: 40, nnz_u: 310, nnz_v: 310, nnz_w: 310, mt: 3, kt: 6, nt: 3 };
        let (m, k, n) = (14400, 14400, 14400);
        let nv = predict_fmm(Impl::Naive, &counts, m, k, n, &arch());
        let abc = predict_fmm(Impl::Abc, &counts, m, k, n, &arch());
        let ab = predict_fmm(Impl::Ab, &counts, m, k, n, &arch());
        assert!(
            nv.total < abc.total && nv.total < ab.total,
            "naive {} should beat abc {} and ab {} for dense-coefficient algorithms",
            nv.total,
            abc.total,
            ab.total
        );
        // The mechanism: the gap must grow with nnz.
        let sparser = PlanCounts { nnz_u: 100, nnz_v: 100, ..counts };
        let nv2 = predict_fmm(Impl::Naive, &sparser, m, k, n, &arch());
        let abc2 = predict_fmm(Impl::Abc, &sparser, m, k, n, &arch());
        assert!(
            (abc.total - nv.total) > (abc2.total - nv2.total),
            "advantage of Naive must grow with operand nnz"
        );
    }

    #[test]
    fn prediction_components_sum() {
        let c = strassen_counts();
        let p = predict_fmm(Impl::Ab, &c, 4000, 2000, 3000, &arch());
        assert!((p.arithmetic + p.memory - p.total).abs() < 1e-15);
        assert!(p.arithmetic > 0.0 && p.memory > 0.0);
    }

    #[test]
    fn total_nanos_converts_and_saturates() {
        let p = predict_gemm(512, 512, 512, &arch());
        let nanos = p.total_nanos();
        assert!(nanos > 0);
        assert!((nanos as f64 - p.total * 1e9).abs() <= 1.0, "within 1ns of the float total");

        // Degenerate predictions must not wrap or panic.
        let zero = Prediction { arithmetic: 0.0, memory: 0.0, total: 0.0, effective_gflops: 0.0 };
        assert_eq!(zero.total_nanos(), 0);
        let neg = Prediction { total: -1.0, ..zero };
        assert_eq!(neg.total_nanos(), 0);
        let inf = Prediction { total: f64::INFINITY, ..zero };
        assert_eq!(inf.total_nanos(), u64::MAX);
        let nan = Prediction { total: f64::NAN, ..zero };
        assert_eq!(nan.total_nanos(), 0);
        let huge = Prediction { total: 1e30, ..zero };
        assert_eq!(huge.total_nanos(), u64::MAX);
    }

    #[test]
    fn two_level_strassen_faster_than_one_level_at_huge_sizes() {
        let one = strassen_counts();
        let two = PlanCounts::of(&FmmPlan::uniform(registry::strassen(), 2));
        let (m, k, n) = (14400, 14400, 14400);
        let p1 = predict_fmm(Impl::Abc, &one, m, k, n, &arch());
        let p2 = predict_fmm(Impl::Abc, &two, m, k, n, &arch());
        assert!(p2.total < p1.total, "two-level should win at 14400^3");
        // And the ordering flips at small sizes (the model's crossover sits
        // near a couple hundred; real machines cross later because of
        // fringe and cache effects the model deliberately omits, §4.4).
        let q1 = predict_fmm(Impl::Abc, &one, 200, 200, 200, &arch());
        let q2 = predict_fmm(Impl::Abc, &two, 200, 200, 200, &arch());
        assert!(q1.total < q2.total, "one-level should win at 200^3");
    }
}
