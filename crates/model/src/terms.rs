//! Verbatim transcription of the paper's Figure 5 tables.
//!
//! The middle table gives, for BLAS GEMM and for L-level FMM, the cost of
//! each arithmetic / memory term (a function of problem size, aggregate
//! partition dims, and blocking parameters). The bottom table gives the
//! per-implementation coefficient `N^X_a` / `N^X_m` each term is multiplied
//! by. [`crate::predict`] combines the two.

use crate::arch::ArchParams;
use crate::Impl;
use fmm_core::counts::PlanCounts;

/// The unit times of Figure 5's middle table for one problem instance.
///
/// All values are in seconds for a *single* occurrence of the term; the
/// coefficients in [`Coeffs`] say how many occurrences each implementation
/// pays. For GEMM use [`Terms::gemm`]; for L-level FMM use [`Terms::fmm`]
/// (where the sub-problem dims `m/M̃_L` etc. replace `m, k, n`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Terms {
    /// `T_a^×`: one (block) multiplication.
    pub tx_a: f64,
    /// `T_a^{A+}`: one A-side block addition (as FMA, factor 2).
    pub ta_plus_a: f64,
    /// `T_a^{B+}`.
    pub tb_plus_a: f64,
    /// `T_a^{C+}`.
    pub tc_plus_a: f64,
    /// `T_m^{A×}`: reading an A block in the packing routine (amortized
    /// over `⌈n/n_c⌉` repetitions of loop 4).
    pub ta_x_m: f64,
    /// `T_m^{B×}`: reading a B block in the packing routine.
    pub tb_x_m: f64,
    /// `T_m^{C×}`: reading+writing a C block in the micro-kernel
    /// (`2λ·…·⌈k/k_c⌉`).
    pub tc_x_m: f64,
    /// `T_m^{A+}`: temporary-buffer traffic for A sums (Naive only).
    pub ta_plus_m: f64,
    /// `T_m^{B+}`.
    pub tb_plus_m: f64,
    /// `T_m^{C+}`: temporary-buffer traffic for `M_r` (Naive and AB).
    pub tc_plus_m: f64,
}

impl Terms {
    /// Middle-table column "gemm": unit terms for plain blocked GEMM on an
    /// `(m, k, n)` problem.
    pub fn gemm(m: usize, k: usize, n: usize, arch: &ArchParams) -> Self {
        Self::build(m as f64, k as f64, n as f64, arch)
    }

    /// Middle-table column "L-level": unit terms for the block sub-problems
    /// of an FMM plan, i.e. GEMM terms at dims `(m/M̃_L, k/K̃_L, n/Ñ_L)`.
    pub fn fmm(counts: &PlanCounts, m: usize, k: usize, n: usize, arch: &ArchParams) -> Self {
        let sm = m as f64 / counts.mt as f64;
        let sk = k as f64 / counts.kt as f64;
        let sn = n as f64 / counts.nt as f64;
        Self::build(sm, sk, sn, arch)
    }

    fn build(m: f64, k: f64, n: f64, arch: &ArchParams) -> Self {
        let ta = arch.tau_a;
        // τ_b is seconds per 8-byte double; narrower elements move
        // proportionally less data for the same term.
        let tb = arch.tau_b * (arch.elem_bytes as f64 / 8.0);
        let ceil = |x: f64, b: usize| (x / b as f64).ceil().max(1.0);
        Self {
            tx_a: 2.0 * m * n * k * ta,
            ta_plus_a: 2.0 * m * k * ta,
            tb_plus_a: 2.0 * k * n * ta,
            tc_plus_a: 2.0 * m * n * ta,
            ta_x_m: m * k * ceil(n, arch.nc) * tb,
            tb_x_m: n * k * tb,
            tc_x_m: 2.0 * arch.lambda * m * n * ceil(k, arch.kc) * tb,
            ta_plus_m: m * k * tb,
            tb_plus_m: k * n * tb,
            tc_plus_m: m * n * tb,
        }
    }
}

/// The coefficient row of Figure 5's bottom table for one implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Coeffs {
    /// `N_a^×`: number of (block) multiplications.
    pub nx_a: usize,
    /// `N_a^{A+}`.
    pub na_plus_a: usize,
    /// `N_a^{B+}`.
    pub nb_plus_a: usize,
    /// `N_a^{C+}`.
    pub nc_plus_a: usize,
    /// `N_m^{A×}`.
    pub na_x_m: usize,
    /// `N_m^{B×}`.
    pub nb_x_m: usize,
    /// `N_m^{C×}`.
    pub nc_x_m: usize,
    /// `N_m^{A+}`.
    pub na_plus_m: usize,
    /// `N_m^{B+}`.
    pub nb_plus_m: usize,
    /// `N_m^{C+}`.
    pub nc_plus_m: usize,
}

/// Figure 5 bottom table: coefficients for `impl_` given the plan counts
/// (for [`Impl::Gemm`], `counts` is ignored).
pub fn coeffs(impl_: Impl, counts: &PlanCounts) -> Coeffs {
    let r = counts.r;
    let (u, v, w) = (counts.nnz_u, counts.nnz_v, counts.nnz_w);
    match impl_ {
        Impl::Gemm => Coeffs {
            nx_a: 1,
            na_plus_a: 0,
            nb_plus_a: 0,
            nc_plus_a: 0,
            na_x_m: 1,
            nb_x_m: 1,
            nc_x_m: 1,
            na_plus_m: 0,
            nb_plus_m: 0,
            nc_plus_m: 0,
        },
        Impl::Abc => Coeffs {
            nx_a: r,
            na_plus_a: u - r,
            nb_plus_a: v - r,
            nc_plus_a: w,
            na_x_m: u,
            nb_x_m: v,
            nc_x_m: w,
            na_plus_m: 0,
            nb_plus_m: 0,
            nc_plus_m: 0,
        },
        Impl::Ab => Coeffs {
            nx_a: r,
            na_plus_a: u - r,
            nb_plus_a: v - r,
            nc_plus_a: w,
            na_x_m: u,
            nb_x_m: v,
            nc_x_m: r,
            na_plus_m: 0,
            nb_plus_m: 0,
            nc_plus_m: 3 * w,
        },
        Impl::Naive => Coeffs {
            nx_a: r,
            na_plus_a: u - r,
            nb_plus_a: v - r,
            nc_plus_a: w,
            na_x_m: r,
            nb_x_m: r,
            nc_x_m: r,
            na_plus_m: u + r,
            nb_plus_m: v + r,
            nc_plus_m: 3 * w,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_core::{registry, FmmPlan};

    fn strassen_counts() -> PlanCounts {
        PlanCounts::of(&FmmPlan::new(vec![registry::strassen()]))
    }

    #[test]
    fn figure5_bottom_table_gemm_column() {
        let c = coeffs(Impl::Gemm, &strassen_counts());
        assert_eq!(
            (c.nx_a, c.na_x_m, c.nb_x_m, c.nc_x_m),
            (1, 1, 1, 1),
            "gemm pays one of each main term"
        );
        assert_eq!(c.na_plus_a + c.nb_plus_a + c.nc_plus_a, 0);
        assert_eq!(c.na_plus_m + c.nb_plus_m + c.nc_plus_m, 0);
    }

    #[test]
    fn figure5_bottom_table_one_level_strassen() {
        // For one-level Strassen: R=7, nnz(U)=nnz(V)=nnz(W)=12.
        let counts = strassen_counts();
        let abc = coeffs(Impl::Abc, &counts);
        assert_eq!(abc.nx_a, 7);
        assert_eq!(abc.na_plus_a, 5);
        assert_eq!(abc.nb_plus_a, 5);
        assert_eq!(abc.nc_plus_a, 12);
        assert_eq!(abc.na_x_m, 12);
        assert_eq!(abc.nb_x_m, 12);
        assert_eq!(abc.nc_x_m, 12);
        assert_eq!(abc.nc_plus_m, 0);

        let ab = coeffs(Impl::Ab, &counts);
        assert_eq!(ab.nc_x_m, 7, "AB touches C through the M_r buffer R_L times");
        assert_eq!(ab.nc_plus_m, 36, "3·nnz(W): 2 reads + 1 write per C update");
        assert_eq!((ab.na_x_m, ab.nb_x_m), (12, 12));

        let nv = coeffs(Impl::Naive, &counts);
        assert_eq!((nv.na_x_m, nv.nb_x_m, nv.nc_x_m), (7, 7, 7));
        assert_eq!(nv.na_plus_m, 19, "nnz(U) + R_L");
        assert_eq!(nv.nb_plus_m, 19);
        assert_eq!(nv.nc_plus_m, 36);
    }

    #[test]
    fn terms_scale_with_problem_size() {
        let arch = ArchParams::paper_machine();
        let t1 = Terms::gemm(1000, 1000, 1000, &arch);
        let t2 = Terms::gemm(2000, 1000, 1000, &arch);
        assert!((t2.tx_a / t1.tx_a - 2.0).abs() < 1e-12);
        assert!((t2.tc_x_m / t1.tc_x_m - 2.0).abs() < 1e-12);
        assert_eq!(t1.tb_x_m, t2.tb_x_m, "B traffic independent of m");
    }

    #[test]
    fn fmm_terms_divide_by_partition_dims() {
        let arch = ArchParams::paper_machine();
        let counts = strassen_counts();
        let f = Terms::fmm(&counts, 2048, 2048, 2048, &arch);
        let g = Terms::gemm(1024, 1024, 1024, &arch);
        assert!((f.tx_a - g.tx_a).abs() < 1e-18);
        assert!((f.ta_plus_a - g.ta_plus_a).abs() < 1e-18);
    }

    #[test]
    fn halved_element_size_halves_memory_terms_only() {
        let arch = ArchParams::paper_machine();
        let f32_arch = arch.with_elem_bytes(4);
        let t8 = Terms::gemm(1024, 1024, 1024, &arch);
        let t4 = Terms::gemm(1024, 1024, 1024, &f32_arch);
        assert_eq!(t8.tx_a, t4.tx_a, "arithmetic terms unchanged");
        assert!((t4.tb_x_m / t8.tb_x_m - 0.5).abs() < 1e-12);
        assert!((t4.tc_x_m / t8.tc_x_m - 0.5).abs() < 1e-12);
        assert!((t4.tc_plus_m / t8.tc_plus_m - 0.5).abs() < 1e-12);
    }

    #[test]
    fn c_traffic_is_ceil_in_k() {
        // The 2λmn⌈k/k_c⌉ term is a step function of k (paper's explanation
        // for ABC's rank-k sweet spots at multiples of K̃_L·k_c).
        let arch = ArchParams::paper_machine();
        let a = Terms::gemm(4096, 256, 4096, &arch);
        let b = Terms::gemm(4096, 257, 4096, &arch);
        assert!(b.tc_x_m > 1.9 * a.tc_x_m, "crossing kc doubles C traffic");
    }
}
