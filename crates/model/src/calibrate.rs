//! Calibration of architecture parameters on the running machine.
//!
//! The paper fixes `τ_a` from the published peak, `τ_b` from the published
//! bandwidth, and adapts `λ` to match measured GEMM performance (§4.2).
//! Reproducing that here: `τ_a` comes from a compute-bound in-cache GEMM
//! measurement, `τ_b` from a streaming triad measurement, and `λ` from a
//! one-dimensional fit of the GEMM model to a measured mid-size GEMM.

use crate::arch::ArchParams;
use crate::predict::predict_gemm;
use fmm_dense::{fill, Matrix};
use fmm_gemm::{BlockingParams, DestTile, GemmScalar, GemmWorkspace};
use std::time::Instant;

/// Measured inputs for calibration, separated from the measurement code so
/// tests can inject synthetic values.
#[derive(Clone, Copy, Debug)]
pub struct Measurements {
    /// Sustained GFLOPS of an in-cache (compute-bound) GEMM.
    pub compute_gflops: f64,
    /// Sustained DRAM bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Measured time of a mid-size, memory-sensitive GEMM `(m, k, n, secs)`.
    pub reference_gemm: (usize, usize, usize, f64),
}

/// Fit `ArchParams` from measurements: `τ_a`, `τ_b` directly, `λ` by
/// one-dimensional search so the model reproduces the reference GEMM time.
pub fn fit(meas: &Measurements, params: &BlockingParams) -> ArchParams {
    let mut arch =
        ArchParams::from_measurements(meas.compute_gflops, meas.bandwidth_gbs, 0.75, params);
    let (m, k, n, t_ref) = meas.reference_gemm;
    // λ enters Tm linearly through the C-traffic term; scan the paper's
    // admissible range for the best match.
    let mut best = (f64::INFINITY, arch.lambda);
    let mut lam = 0.5;
    while lam <= 1.0 + 1e-9 {
        arch.lambda = lam;
        let err = (predict_gemm(m, k, n, &arch).total - t_ref).abs();
        if err < best.0 {
            best = (err, lam);
        }
        lam += 0.01;
    }
    arch.lambda = best.1;
    arch
}

/// Run the measurements on this machine (takes a few hundred milliseconds).
///
/// `scale` shrinks the measurement sizes (1.0 = the defaults below); the
/// figure harness passes its `--scale` through so calibration cost tracks
/// experiment cost. [`measure_t`] is the generic form; this `f64` alias
/// keeps the historical signature.
pub fn measure(params: &BlockingParams, scale: f64) -> Measurements {
    measure_t::<f64>(params, scale)
}

/// [`measure`] for an arbitrary execution scalar: the compute probe and the
/// reference GEMM run `T`'s runtime-selected micro-kernel (so `tau_a`
/// reflects the dtype's actual peak), while the bandwidth probe stays an
/// 8-byte stream — `tau_b` is defined per 8 bytes moved and the DRAM rate
/// is dtype-independent.
pub fn measure_t<T: GemmScalar>(params: &BlockingParams, scale: f64) -> Measurements {
    let dim = |x: usize| ((x as f64 * scale) as usize).max(64);
    // Compute-bound probe: operands sized to the L2-resident block.
    let compute_gflops = {
        let (m, k, n) = (params.mc.max(64), params.kc.max(64), 256.max(params.nr));
        let secs = time_gemm::<T>(m, k, n, params, 5);
        fmm_core::counts::effective_gflops(m, k, n, secs)
    };
    // Bandwidth probe: large copy with accumulate (read + write streams).
    let bandwidth_gbs = {
        let len = ((64 << 20) as f64 * scale) as usize / 8; // scale of 64 MB
        let src = vec![1.0f64; len.max(1 << 20)];
        let mut dst = vec![0.0f64; src.len()];
        let start = Instant::now();
        let reps = 3;
        for _ in 0..reps {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += *s;
            }
            std::hint::black_box(&mut dst);
        }
        let secs = start.elapsed().as_secs_f64() / reps as f64;
        // 3 streams of traffic per element: read src, read dst, write dst.
        (3 * src.len() * 8) as f64 / secs / 1e9
    };
    // Reference mid-size GEMM for the λ fit.
    let (m, k, n) = (dim(2048), dim(1024), dim(2048));
    let secs = time_gemm::<T>(m, k, n, params, 2);
    Measurements { compute_gflops, bandwidth_gbs, reference_gemm: (m, k, n, secs) }
}

/// Calibrate in one call: measure then fit.
pub fn calibrate(params: &BlockingParams, scale: f64) -> ArchParams {
    fit(&measure(params, scale), params)
}

fn time_gemm<T: GemmScalar>(
    m: usize,
    k: usize,
    n: usize,
    params: &BlockingParams,
    reps: usize,
) -> f64 {
    let a = fill::bench_workload_t::<T>(m, k, 91);
    let b = fill::bench_workload_t::<T>(k, n, 92);
    let mut c = Matrix::<T>::zeros(m, n);
    let mut ws = GemmWorkspace::<T>::for_params(params);
    // Warm-up.
    fmm_gemm::driver::gemm_sums(
        &mut [DestTile::new(c.as_mut(), T::ONE)],
        &[(T::ONE, a.as_ref())],
        &[(T::ONE, b.as_ref())],
        params,
        &mut ws,
    );
    let start = Instant::now();
    for _ in 0..reps {
        fmm_gemm::driver::gemm_sums(
            &mut [DestTile::new(c.as_mut(), T::ONE)],
            &[(T::ONE, a.as_ref())],
            &[(T::ONE, b.as_ref())],
            params,
            &mut ws,
        );
    }
    start.elapsed().as_secs_f64() / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_lambda_from_synthetic_data() {
        // Generate a reference time from known parameters, then fit.
        let params = BlockingParams::default();
        let mut truth = ArchParams::paper_machine();
        truth.lambda = 0.82;
        let (m, k, n) = (4000, 256, 4000); // memory-sensitive shape
        let t_ref = predict_gemm(m, k, n, &truth).total;
        let meas = Measurements {
            compute_gflops: truth.peak_gflops(),
            bandwidth_gbs: 8.0 / truth.tau_b / 1e9,
            reference_gemm: (m, k, n, t_ref),
        };
        let fitted = fit(&meas, &params);
        assert!((fitted.lambda - 0.82).abs() < 0.02, "fitted λ = {}", fitted.lambda);
        assert!((fitted.tau_a - truth.tau_a).abs() / truth.tau_a < 1e-9);
    }

    #[test]
    fn fit_clamps_lambda_into_range() {
        let params = BlockingParams::default();
        let meas = Measurements {
            compute_gflops: 28.0,
            bandwidth_gbs: 60.0,
            reference_gemm: (1000, 1000, 1000, 1e-9), // absurdly fast
        };
        let fitted = fit(&meas, &params);
        assert!((0.5..=1.0).contains(&fitted.lambda));
        fitted.validate().unwrap();
    }

    #[test]
    #[ignore = "runs actual timing; invoke explicitly or via the bench harness"]
    fn measure_produces_plausible_numbers() {
        let params = BlockingParams::default();
        let meas = measure(&params, 0.25);
        assert!(meas.compute_gflops > 0.1);
        assert!(meas.bandwidth_gbs > 0.1);
        assert!(meas.reference_gemm.3 > 0.0);
    }
}
