//! Table assembly and printing for the figure binaries.

/// A rectangular results table: one label column plus numeric columns.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// New table with the given title and numeric column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. `values.len()` must match the header count.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.headers.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let label_w = self.rows.iter().map(|(l, _)| l.len()).chain([5]).max().unwrap_or(5).max(5);
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&format!("{:label_w$}", ""));
        for h in &self.headers {
            out.push_str(&format!(" {h:>10}"));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("{label:label_w$}"));
            for v in values {
                out.push_str(&format!(" {v:>10.2}"));
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (`label,col1,col2,...`).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("label");
        for h in &self.headers {
            out.push(',');
            out.push_str(h);
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(label);
            for v in values {
                out.push_str(&format!(",{v:.4}"));
            }
            out.push('\n');
        }
        out
    }

    /// Print in the format selected by the harness parameters.
    pub fn print(&self, csv: bool) {
        if csv {
            print!("{}", self.render_csv());
        } else {
            print!("{}", self.render());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_includes_all_rows() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push("row-one", vec![1.0, 2.5]);
        t.push("r2", vec![-3.0, 4.25]);
        let s = t.render();
        assert!(s.contains("# demo"));
        assert!(s.contains("row-one"));
        assert!(s.contains("4.25"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new("demo", &["gflops"]);
        t.push("strassen", vec![31.4159]);
        let csv = t.render_csv();
        assert!(csv.starts_with("label,gflops\n"));
        assert!(csv.contains("strassen,31.4159"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push("x", vec![1.0]);
    }
}
