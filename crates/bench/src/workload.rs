//! Seeded benchmark workloads.

use fmm_dense::{fill, Matrix};

/// The operand triple for one `C += A·B` measurement.
pub struct Workload {
    /// `m x k` operand.
    pub a: Matrix,
    /// `k x n` operand.
    pub b: Matrix,
    /// `m x n` accumulator, reset between timed runs by the harness.
    pub c: Matrix,
}

impl Workload {
    /// Build a workload with entries in `[-1, 1)` (the distribution the
    /// correctness tolerances assume).
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        Self {
            a: fill::bench_workload(m, k, 0xA),
            b: fill::bench_workload(k, n, 0xB),
            c: Matrix::zeros(m, n),
        }
    }

    /// Problem dims `(m, k, n)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.a.rows(), self.a.cols(), self.b.cols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shapes_agree() {
        let w = Workload::new(12, 8, 10);
        assert_eq!(w.dims(), (12, 8, 10));
        assert_eq!(w.c.rows(), 12);
        assert_eq!(w.c.cols(), 10);
    }
}
