//! Measurement drivers: run a `(plan, variant)` or plain GEMM on a
//! workload and report effective GFLOPS, with the model prediction
//! alongside (the paper's actual-vs-modeled pairs).

use crate::timing;
use crate::workload::Workload;
use fmm_core::counts::PlanCounts;
use fmm_core::{fmm_execute, fmm_execute_parallel, FmmContext, FmmPlan, Variant};
use fmm_gemm::{BlockingParams, DestTile, GemmWorkspace};
use fmm_model::{predict_fmm, predict_gemm, ArchParams, Impl};

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct Measured {
    /// Effective GFLOPS measured.
    pub actual: f64,
    /// Effective GFLOPS the model predicts.
    pub modeled: f64,
}

/// Measure plain blocked GEMM on `(m, k, n)`.
pub fn measure_gemm(
    m: usize,
    k: usize,
    n: usize,
    params: &BlockingParams,
    arch: &ArchParams,
    reps: usize,
    parallel: bool,
) -> Measured {
    let mut w = Workload::new(m, k, n);
    let mut ws = GemmWorkspace::for_params(params);
    let secs = timing::time_min(reps, || {
        if parallel {
            fmm_gemm::parallel::gemm_sums_parallel(
                &mut [DestTile::new(w.c.as_mut(), 1.0)],
                &[(1.0, w.a.as_ref())],
                &[(1.0, w.b.as_ref())],
                params,
            );
        } else {
            fmm_gemm::driver::gemm_sums(
                &mut [DestTile::new(w.c.as_mut(), 1.0)],
                &[(1.0, w.a.as_ref())],
                &[(1.0, w.b.as_ref())],
                params,
                &mut ws,
            );
        }
    });
    Measured {
        actual: timing::gflops(m, k, n, secs),
        modeled: predict_gemm(m, k, n, arch).effective_gflops,
    }
}

/// Measure an FMM `(plan, variant)` on `(m, k, n)`.
#[allow(clippy::too_many_arguments)]
pub fn measure_fmm(
    plan: &FmmPlan,
    variant: Variant,
    m: usize,
    k: usize,
    n: usize,
    params: &BlockingParams,
    arch: &ArchParams,
    reps: usize,
    parallel: bool,
) -> Measured {
    let mut w = Workload::new(m, k, n);
    let mut ctx = FmmContext::new(*params);
    let secs = timing::time_min(reps, || {
        if parallel {
            fmm_execute_parallel(w.c.as_mut(), w.a.as_ref(), w.b.as_ref(), plan, variant, &mut ctx);
        } else {
            fmm_execute(w.c.as_mut(), w.a.as_ref(), w.b.as_ref(), plan, variant, &mut ctx);
        }
    });
    let counts = PlanCounts::of(plan);
    Measured {
        actual: timing::gflops(m, k, n, secs),
        modeled: predict_fmm(Impl::from_variant(variant), &counts, m, k, n, arch)
            .effective_gflops,
    }
}

/// Calibrate architecture parameters once for a harness run (quick probe).
pub fn calibrated_arch(params: &BlockingParams, scale: f64) -> ArchParams {
    fmm_model::calibrate::calibrate(params, scale.clamp(0.05, 0.5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_core::registry;

    #[test]
    fn measure_gemm_produces_positive_rates() {
        let params = BlockingParams::default();
        let arch = ArchParams::paper_machine();
        let m = measure_gemm(128, 96, 128, &params, &arch, 1, false);
        assert!(m.actual > 0.0);
        assert!(m.modeled > 0.0);
    }

    #[test]
    fn measure_fmm_produces_positive_rates() {
        let params = BlockingParams::default();
        let arch = ArchParams::paper_machine();
        let plan = FmmPlan::new(vec![registry::strassen()]);
        let m = measure_fmm(&plan, Variant::Abc, 128, 96, 128, &params, &arch, 1, false);
        assert!(m.actual > 0.0);
        assert!(m.modeled > 0.0);
    }
}
