//! Measurement drivers: run a `(plan, variant)`, plain GEMM, or the
//! model-routed engine on a workload and report effective GFLOPS, with the
//! model prediction alongside (the paper's actual-vs-modeled pairs).
//!
//! FMM measurements execute through a per-measurement [`FmmEngine`] so the
//! timed region exercises the production path: pooled contexts, preplanned
//! arenas, and (for [`measure_engine`]) the decision cache.

use crate::timing;
use crate::workload::Workload;
use fmm_core::counts::PlanCounts;
use fmm_core::{FmmPlan, Variant};
use fmm_engine::{EngineConfig, EngineStats, FmmEngine, Routing};
use fmm_gemm::{BlockingParams, DestTile, GemmWorkspace};
use fmm_model::{predict_fmm, predict_gemm, ArchParams, Impl};

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct Measured {
    /// Effective GFLOPS measured.
    pub actual: f64,
    /// Effective GFLOPS the model predicts.
    pub modeled: f64,
}

fn engine_for(params: &BlockingParams, arch: &ArchParams, parallel: bool) -> FmmEngine {
    FmmEngine::new(EngineConfig {
        arch: (*arch).into(),
        params: *params,
        parallel,
        ..EngineConfig::default()
    })
}

/// Measure plain blocked GEMM on `(m, k, n)`.
pub fn measure_gemm(
    m: usize,
    k: usize,
    n: usize,
    params: &BlockingParams,
    arch: &ArchParams,
    reps: usize,
    parallel: bool,
) -> Measured {
    let mut w = Workload::new(m, k, n);
    let mut ws = GemmWorkspace::for_params(params);
    let secs = timing::time_min(reps, || {
        if parallel {
            fmm_gemm::parallel::gemm_sums_parallel(
                &mut [DestTile::new(w.c.as_mut(), 1.0)],
                &[(1.0, w.a.as_ref())],
                &[(1.0, w.b.as_ref())],
                params,
            );
        } else {
            fmm_gemm::driver::gemm_sums(
                &mut [DestTile::new(w.c.as_mut(), 1.0)],
                &[(1.0, w.a.as_ref())],
                &[(1.0, w.b.as_ref())],
                params,
                &mut ws,
            );
        }
    });
    Measured {
        actual: timing::gflops(m, k, n, secs),
        modeled: predict_gemm(m, k, n, arch).effective_gflops,
    }
}

/// Measure an FMM `(plan, variant)` on `(m, k, n)` through engine-pooled
/// contexts.
#[allow(clippy::too_many_arguments)]
pub fn measure_fmm(
    plan: &FmmPlan,
    variant: Variant,
    m: usize,
    k: usize,
    n: usize,
    params: &BlockingParams,
    arch: &ArchParams,
    reps: usize,
    parallel: bool,
) -> Measured {
    let mut w = Workload::new(m, k, n);
    let engine = engine_for(params, arch, parallel);
    let secs = timing::time_min(reps, || {
        engine.multiply_with_plan(w.c.as_mut(), w.a.as_ref(), w.b.as_ref(), plan, variant);
    });
    let counts = PlanCounts::of(plan);
    Measured {
        actual: timing::gflops(m, k, n, secs),
        modeled: predict_fmm(Impl::from_variant(variant), &counts, m, k, n, arch).effective_gflops,
    }
}

/// Measure the full model-routed engine path (the §4.4 poly-algorithm as a
/// service would run it). The decision is resolved and cached during
/// warmup, so the timed region is the engine's warm path. Returns the
/// measurement, the engine's decision label, and the cache statistics
/// accumulated across the run.
#[allow(clippy::too_many_arguments)]
pub fn measure_engine(
    m: usize,
    k: usize,
    n: usize,
    params: &BlockingParams,
    arch: &ArchParams,
    reps: usize,
    parallel: bool,
) -> (Measured, String, EngineStats) {
    let mut w = Workload::new(m, k, n);
    let engine = engine_for(params, arch, parallel);
    engine.prepare(m, k, n);
    let label = engine.decision_label(m, k, n);
    let secs = timing::time_min(reps, || {
        engine.multiply(w.c.as_mut(), w.a.as_ref(), w.b.as_ref());
    });
    // "Modeled" for the routed path is the best prediction over the exact
    // candidate set the engine ranked, served from its plan cache (no
    // recomposition and no possibility of the two pools diverging).
    let plans = engine.candidate_plans();
    let ranked = fmm_model::rank_candidates(m, k, n, &plans, &Impl::FMM_VARIANTS, arch, true);
    let measured = Measured {
        actual: timing::gflops(m, k, n, secs),
        modeled: ranked[0].prediction.effective_gflops,
    };
    (measured, label, engine.stats())
}

/// As [`measure_engine`] with a pinned `(dims, levels, variant)` route —
/// for ablations that want engine pooling with a known algorithm.
#[allow(clippy::too_many_arguments)]
pub fn measure_engine_pinned(
    dims: (usize, usize, usize),
    levels: usize,
    variant: Variant,
    m: usize,
    k: usize,
    n: usize,
    params: &BlockingParams,
    arch: &ArchParams,
    reps: usize,
) -> (Measured, EngineStats) {
    let mut w = Workload::new(m, k, n);
    let engine = FmmEngine::new(EngineConfig {
        arch: (*arch).into(),
        params: *params,
        routing: Routing::Pinned { dims, levels, variant },
        ..EngineConfig::default()
    });
    engine.prepare(m, k, n);
    let secs = timing::time_min(reps, || {
        engine.multiply(w.c.as_mut(), w.a.as_ref(), w.b.as_ref());
    });
    let algo = engine.registry().get(dims).expect("pinned dims exist");
    let plan = FmmPlan::from_arcs(vec![algo; levels]);
    let counts = PlanCounts::of(&plan);
    let measured = Measured {
        actual: timing::gflops(m, k, n, secs),
        modeled: predict_fmm(Impl::from_variant(variant), &counts, m, k, n, arch).effective_gflops,
    };
    (measured, engine.stats())
}

/// Calibrate architecture parameters once for a harness run (quick probe).
pub fn calibrated_arch(params: &BlockingParams, scale: f64) -> ArchParams {
    fmm_model::calibrate::calibrate(params, scale.clamp(0.05, 0.5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_core::registry;

    #[test]
    fn measure_gemm_produces_positive_rates() {
        let params = BlockingParams::default();
        let arch = ArchParams::paper_machine();
        let m = measure_gemm(128, 96, 128, &params, &arch, 1, false);
        assert!(m.actual > 0.0);
        assert!(m.modeled > 0.0);
    }

    #[test]
    fn measure_fmm_produces_positive_rates() {
        let params = BlockingParams::default();
        let arch = ArchParams::paper_machine();
        let plan = FmmPlan::new(vec![registry::strassen()]);
        let m = measure_fmm(&plan, Variant::Abc, 128, 96, 128, &params, &arch, 1, false);
        assert!(m.actual > 0.0);
        assert!(m.modeled > 0.0);
    }

    #[test]
    fn measure_engine_reports_label_and_warm_stats() {
        let params = BlockingParams::default();
        let arch = ArchParams::paper_machine();
        let (m, label, stats) = measure_engine(96, 64, 96, &params, &arch, 2, false);
        assert!(m.actual > 0.0);
        assert!(!label.is_empty());
        assert_eq!(stats.rankings, 1, "decision resolved once, during warmup");
    }

    #[test]
    fn measure_engine_pinned_runs_requested_route() {
        let params = BlockingParams::default();
        let arch = ArchParams::paper_machine();
        let ((measured, stats), _) =
            (measure_engine_pinned((2, 2, 2), 1, Variant::Abc, 64, 64, 64, &params, &arch, 2), ());
        assert!(measured.actual > 0.0);
        assert!(measured.modeled > 0.0);
        assert_eq!(stats.plan_compositions, 1);
        assert_eq!(stats.arena_grows, 0, "ABC needs no arena");
    }
}
