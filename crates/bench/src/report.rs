//! Shared benchmark-report emission.
//!
//! Every smoke benchmark used to hand-roll its own `format!`-built JSON;
//! this module gives them one schema and one serializer
//! (`fmm_core::json`). A report is
//!
//! ```json
//! {
//!   "benchmark": "<name>",
//!   "env": { "workers": N, "kernel_f64": "...", "kernel_f32": "..." },
//!   ...benchmark-specific scalar fields...,
//!   "rows": [ { "size": 512, "gflops": 24.5, ... }, ... ]
//! }
//! ```
//!
//! where the `env` fingerprint is captured automatically, and every row
//! carries at least a `size` and a `gflops` so trajectory tooling can read
//! any benchmark's output without per-benchmark parsers.

use fmm_core::json::{self, Value};
use fmm_gemm::GemmScalar;
use std::collections::BTreeMap;

/// Shorthand: a JSON number.
pub fn num(x: f64) -> Value {
    Value::Number(x)
}

/// Shorthand: a JSON integer.
pub fn int(x: i64) -> Value {
    Value::Int(x)
}

/// Shorthand: a JSON string.
pub fn text(s: impl Into<String>) -> Value {
    Value::String(s.into())
}

/// Shorthand: a JSON object from key/value pairs.
pub fn object(entries: &[(&str, Value)]) -> Value {
    Value::Object(entries.iter().map(|(k, v)| (k.to_string(), v.clone())).collect())
}

/// Optional per-row latency columns from raw per-call samples (seconds
/// in, milliseconds out): `mean_ms` / `p50_ms` / `p99_ms`, nearest-rank
/// percentiles. Serving benchmarks are latency benchmarks, so rows that
/// time individual calls should append these alongside `gflops`:
///
/// ```ignore
/// let mut entries = vec![("size", int(n as i64)), ("gflops", num(g))];
/// entries.extend(latency_fields(&samples_secs));
/// report.row(&entries);
/// ```
///
/// (Deliberately self-contained: `fmm-serve`'s live-metrics ring keeps
/// its own summarizer — this bottom-of-the-graph module must not pull
/// the serving stack into every figure binary.)
pub fn latency_fields(samples_secs: &[f64]) -> [(&'static str, Value); 3] {
    if samples_secs.is_empty() {
        return [("mean_ms", num(0.0)), ("p50_ms", num(0.0)), ("p99_ms", num(0.0))];
    }
    let mut sorted: Vec<f64> = samples_secs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
    let rank = |p: f64| -> f64 {
        let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx] * 1e3
    };
    let mean_ms = sorted.iter().sum::<f64>() / sorted.len() as f64 * 1e3;
    [("mean_ms", num(mean_ms)), ("p50_ms", num(rank(0.50))), ("p99_ms", num(rank(0.99)))]
}

/// One benchmark report under the shared schema. See the module docs.
pub struct Report {
    fields: BTreeMap<String, Value>,
    rows: Vec<Value>,
}

impl Report {
    /// Start a report, capturing the environment fingerprint (worker
    /// count and the runtime-selected micro-kernels).
    pub fn new(name: &str) -> Self {
        let mut fields = BTreeMap::new();
        fields.insert("benchmark".to_string(), text(name));
        fields.insert(
            "env".to_string(),
            object(&[
                ("workers", int(rayon::current_num_threads() as i64)),
                ("kernel_f64", text(<f64 as GemmScalar>::micro_kernel_name())),
                ("kernel_f32", text(<f32 as GemmScalar>::micro_kernel_name())),
            ]),
        );
        Self { fields, rows: Vec::new() }
    }

    /// Set a top-level scalar field.
    pub fn field(&mut self, key: &str, value: Value) -> &mut Self {
        self.fields.insert(key.to_string(), value);
        self
    }

    /// Append one measurement row. Rows should carry at least `size` and
    /// `gflops`; extra keys are benchmark-specific.
    pub fn row(&mut self, entries: &[(&str, Value)]) -> &mut Self {
        self.rows.push(object(entries));
        self
    }

    /// Serialize to the schema's JSON text.
    pub fn to_json(&self) -> String {
        let mut doc = self.fields.clone();
        doc.insert("rows".to_string(), Value::Array(self.rows.clone()));
        let mut out = json::to_string_pretty(&Value::Object(doc));
        out.push('\n');
        out
    }

    /// Write the report to `path` and echo it to stdout (the CI pattern:
    /// the file is the artifact, the echo is the log).
    pub fn write(&self, path: &str) {
        let text = self.to_json();
        std::fs::write(path, &text).expect("write benchmark JSON");
        println!("{text}");
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_fields_summarize_samples_in_ms() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 / 1e3).collect();
        let fields = latency_fields(&samples);
        let by_key: BTreeMap<&str, f64> =
            fields.iter().map(|(k, v)| (*k, v.as_number().unwrap())).collect();
        assert!((by_key["p50_ms"] - 50.0).abs() < 1e-9);
        assert!((by_key["p99_ms"] - 99.0).abs() < 1e-9);
        assert!((by_key["mean_ms"] - 50.5).abs() < 1e-9);

        // Rows accept them alongside the standard columns.
        let mut r = Report::new("latency_unit_test");
        let mut entries = vec![("size", int(64)), ("gflops", num(1.0))];
        entries.extend(latency_fields(&samples));
        r.row(&entries);
        let doc = json::parse(&r.to_json()).expect("valid JSON");
        let row = &doc.get("rows").unwrap().as_array().unwrap()[0];
        assert!(row.get("p99_ms").unwrap().as_number().unwrap() > 0.0);
    }

    #[test]
    fn report_emits_schema_with_env_fingerprint() {
        let mut r = Report::new("unit_test");
        r.field("reps", int(3));
        r.row(&[("size", int(256)), ("gflops", num(12.5))]);
        let doc = json::parse(&r.to_json()).expect("valid JSON");
        assert_eq!(doc.get("benchmark").unwrap().as_str().unwrap(), "unit_test");
        assert!(doc.get("env").unwrap().get("workers").unwrap().as_usize().unwrap() >= 1);
        assert!(doc.get("env").unwrap().get("kernel_f64").is_ok());
        let rows = doc.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("size").unwrap().as_usize().unwrap(), 256);
        assert_eq!(rows[0].get("gflops").unwrap().as_number().unwrap(), 12.5);
    }
}
