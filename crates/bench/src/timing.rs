//! Steady-state timing helpers.

use std::time::Instant;

/// Time `f` with one untimed warm-up call, then `reps` timed calls;
/// returns the *minimum* per-call seconds (the conventional low-noise
/// estimator for compute kernels).
pub fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: page-in buffers, fill caches, JIT the kernel choice
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Format seconds as effective GFLOPS for an `(m, k, n)` product.
pub fn gflops(m: usize, k: usize, n: usize, secs: f64) -> f64 {
    fmm_core::counts::effective_gflops(m, k, n, secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_min_runs_warmup_plus_reps() {
        let mut calls = 0;
        let t = time_min(3, || calls += 1);
        assert_eq!(calls, 4);
        assert!(t >= 0.0);
    }

    #[test]
    fn gflops_matches_counts() {
        assert!((gflops(1000, 1000, 1000, 2.0) - 1.0).abs() < 1e-12);
    }
}
