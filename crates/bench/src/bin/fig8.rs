//! Figure 8: model-guided selection. For each problem size, the model
//! ranks all (plan, variant) candidates; the paper's §4.4 protocol measures
//! the top two and keeps the winner ("Selected FMM"). "Best FMM" is the
//! best measured among the model's top five (a bounded stand-in for the
//! paper's exhaustively-measured best). GEMM is the baseline.

use fmm_bench::figure::Table;
use fmm_bench::{measure_fmm, measure_gemm, FigureParams};
use fmm_core::{registry::Registry, FmmPlan};
use fmm_gemm::BlockingParams;
use fmm_model::{rank_candidates, Impl};
use std::sync::Arc;

fn main() {
    let p = FigureParams::from_args();
    let params = BlockingParams::default();
    let arch = fmm_bench::runner::calibrated_arch(&params, p.scale);
    let reg = Registry::shared();

    // Candidate plans: one- and two-level of every paper algorithm.
    let mut rows = reg.paper_rows();
    if p.limit_algos > 0 {
        rows.truncate(p.limit_algos);
    }
    let mut plans: Vec<Arc<FmmPlan>> = Vec::new();
    for (_, algo) in &rows {
        plans.push(Arc::new(FmmPlan::from_arcs(vec![algo.clone()])));
        plans.push(Arc::new(FmmPlan::from_arcs(vec![algo.clone(), algo.clone()])));
    }

    type Sweep = (&'static str, Vec<(usize, usize, usize)>);
    let sweeps: [Sweep; 3] = [
        (
            "m=k=n",
            p.k_sweep(&[2000, 4000, 8000, 12000]).iter().map(|&x| (rt(x), rt(x), rt(x))).collect(),
        ),
        ("m=n=14400s, k varies", {
            let mn = p.dim(14400, 144);
            p.k_sweep(&[1000, 2000, 6000, 12000]).iter().map(|&k| (mn, rt(k), mn)).collect()
        }),
        (
            "k=1024, m=n vary",
            p.k_sweep(&[2000, 6000, 12000]).iter().map(|&mn| (rt(mn), 1024, rt(mn))).collect(),
        ),
    ];

    for (sweep_name, points) in sweeps {
        let mut table = Table::new(
            format!("Figure 8: model-guided selection ({sweep_name})"),
            &["GEMM", "SelectedFMM", "BestFMM(top5)"],
        );
        for (m, k, n) in points {
            let gemm = measure_gemm(m, k, n, &params, &arch, p.reps, p.parallel());
            let ranked = rank_candidates(m, k, n, &plans, &Impl::FMM_VARIANTS, &arch, false);
            let measure_candidate = |c: &fmm_model::Candidate| -> f64 {
                let plan = c.plan.as_ref().expect("FMM candidates carry plans");
                let variant = c.impl_.to_variant().expect("FMM variant");
                measure_fmm(plan, variant, m, k, n, &params, &arch, p.reps, p.parallel()).actual
            };
            // §4.4 protocol: measure the top two, keep the better.
            let selected = ranked.iter().take(2).map(&measure_candidate).fold(0.0, f64::max);
            let best5 = ranked.iter().take(5).map(&measure_candidate).fold(0.0, f64::max);
            let chosen = &ranked[0];
            eprintln!("  {m}x{k}x{n}: model prefers {}", chosen.describe());
            table.push(format!("{m}x{k}x{n}"), vec![gemm.actual, selected, best5]);
        }
        table.print(p.csv);
        println!();
    }
}

fn rt(x: usize) -> usize {
    (x.max(144) / 144) * 144
}
