//! Engine performance smoke test: repeated 512³ multiplies through a
//! model-routed `FmmEngine`, cold versus warm, emitted as
//! `BENCH_engine.json` so successive PRs accumulate a perf trajectory.
//!
//! ```sh
//! cargo run --release -p fmm-bench --bin engine_smoke [-- --size 512 --reps 20 --out BENCH_engine.json]
//! ```
//!
//! * `cold_ms` — the first `multiply` of the shape on a fresh engine:
//!   pays model ranking, plan composition, context construction, and
//!   arena/packing allocation.
//! * `warm_*` — steady state: decision-cache hits, pooled context, zero
//!   workspace allocation (asserted via engine counters before emitting).

use fmm_bench::report::{int, num, object, text, Report};
use fmm_bench::timing;
use fmm_dense::fill;
use fmm_engine::FmmEngine;
use std::time::Instant;

struct Args {
    size: usize,
    reps: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args { size: 512, reps: 20, out: "BENCH_engine.json".to_string() };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--size" => {
                args.size = argv[i + 1].parse().expect("--size takes an integer");
                i += 2;
            }
            "--reps" => {
                args.reps = argv[i + 1].parse().expect("--reps takes an integer");
                i += 2;
            }
            "--out" => {
                args.out = argv[i + 1].clone();
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let n = args.size;
    let a = fill::bench_workload(n, n, 1);
    let b = fill::bench_workload(n, n, 2);
    let mut c = fmm_dense::Matrix::zeros(n, n);

    let engine = FmmEngine::with_defaults();

    // Cold: first call on a fresh engine for a fresh shape.
    let t0 = Instant::now();
    engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
    let cold = t0.elapsed().as_secs_f64();
    let decision = engine.decision_label(n, n, n);

    // Warm: steady-state repeated calls.
    let warm_secs = timing::time_min(args.reps, || {
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
    });
    let stats = engine.stats();

    // The warm path must have been genuinely warm.
    assert_eq!(stats.rankings, 1, "exactly one ranking for one shape");
    let warm_calls = stats.executions - 1;
    assert_eq!(
        stats.decision_hits,
        warm_calls + 1, // + the decision_label probe
        "every warm call hit the decision cache"
    );

    let warm_calls_per_sec = 1.0 / warm_secs;
    let warm_gflops = timing::gflops(n, n, n, warm_secs);
    let cold_gflops = timing::gflops(n, n, n, cold);

    // The full counter set rides along via the `EngineStats::fields`
    // reflection surface (one schema for every consumer; see fmm-serve's
    // stats channel for the other user).
    let stat_fields: Vec<(&str, fmm_core::json::Value)> =
        stats.fields().iter().map(|&(name, value)| (name, int(value as i64))).collect();
    println!("engine stats: {stats}");

    let mut report = Report::new("engine_smoke");
    report.field("reps", int(args.reps as i64)).field("stats", object(&stat_fields)).row(&[
        ("size", int(n as i64)),
        ("gflops", num(warm_gflops)),
        ("decision", text(decision)),
        ("cold_ms", num(cold * 1e3)),
        ("cold_effective_gflops", num(cold_gflops)),
        ("warm_ms", num(warm_secs * 1e3)),
        ("warm_calls_per_sec", num(warm_calls_per_sec)),
    ]);
    report.write(&args.out);
}
