//! Figure 9: the benefit of hybrid two-level partitions. Fixed `k = 1200`
//! (close to 2·3·k_c / 1.28, the regime where mixing partition factors 2
//! and 3 along `k` pays off), `m = n` varying, ABC variant. Run with
//! `--threads N` for the 10-core panel's analogue.

use fmm_bench::figure::Table;
use fmm_bench::{measure_fmm, measure_gemm, FigureParams};
use fmm_core::{registry::Registry, FmmPlan, Variant};
use fmm_gemm::BlockingParams;
use std::sync::Arc;

fn main() {
    let p = FigureParams::from_args();
    let params = BlockingParams::default();
    let arch = fmm_bench::runner::calibrated_arch(&params, p.scale);
    let reg = Registry::shared();

    let a222 = reg.get((2, 2, 2)).expect("registry covers <2,2,2>");
    let a232 = reg.get((2, 3, 2)).expect("registry covers <2,3,2>");
    let a333 = reg.get((3, 3, 3)).expect("registry covers <3,3,3>");

    let plans: Vec<(&str, Arc<FmmPlan>)> = vec![
        ("<2,2,2> 1L", Arc::new(FmmPlan::from_arcs(vec![a222.clone()]))),
        ("<2,3,2> 1L", Arc::new(FmmPlan::from_arcs(vec![a232.clone()]))),
        ("<3,3,3> 1L", Arc::new(FmmPlan::from_arcs(vec![a333.clone()]))),
        ("<2,2,2> 2L", Arc::new(FmmPlan::from_arcs(vec![a222.clone(), a222.clone()]))),
        ("<2,3,2> 2L", Arc::new(FmmPlan::from_arcs(vec![a232.clone(), a232.clone()]))),
        ("<3,3,3> 2L", Arc::new(FmmPlan::from_arcs(vec![a333.clone(), a333.clone()]))),
        ("<2,2,2>+<2,3,2>", Arc::new(FmmPlan::from_arcs(vec![a222.clone(), a232.clone()]))),
        ("<2,2,2>+<3,3,3>", Arc::new(FmmPlan::from_arcs(vec![a222.clone(), a333.clone()]))),
    ];

    let k = 1200; // absolute: the paper's point is k ≈ 2·3·kc-adjacent
    let mns: Vec<usize> = p
        .k_sweep(&[2000, 4000, 6000, 9000, 12000, 15000])
        .iter()
        .map(|&x| (x.max(180) / 180) * 180) // divisible by 2·2·3·3·... pairs
        .collect();
    eprintln!("fig9: k={k}, m=n in {mns:?}, threads={}", p.threads);

    let headers: Vec<String> = mns.iter().map(|mn| format!("mn={mn}")).collect();
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        format!("Figure 9: hybrid partitions, ABC, k={k}, {} thread(s)", p.threads),
        &headers_ref,
    );

    let mut gemm_row = Vec::new();
    for &mn in &mns {
        gemm_row.push(measure_gemm(mn, k, mn, &params, &arch, p.reps, p.parallel()).actual);
    }
    table.push("GEMM", gemm_row);

    for (label, plan) in &plans {
        let mut row = Vec::new();
        for &mn in &mns {
            row.push(
                measure_fmm(plan, Variant::Abc, mn, k, mn, &params, &arch, p.reps, p.parallel())
                    .actual,
            );
        }
        table.push(*label, row);
    }
    table.print(p.csv);
}
