//! Single-precision smoke benchmark: f32 vs f64 engine throughput at
//! 256³ / 512³ / 1024³, emitted as `BENCH_f32.json` so successive PRs
//! accumulate a dtype-performance trajectory.
//!
//! ```sh
//! cargo run --release -p fmm-bench --bin f32_smoke [-- --reps 5 --out BENCH_f32.json]
//! ```
//!
//! Each size reports warm (steady-state) effective GFLOP/s for both
//! dtypes plus the speedup ratio; the f32 result is additionally checked
//! against the f64 result at the `Scalar`-derived bound, so a kernel bug
//! can never masquerade as a speedup.

use fmm_bench::report::{int, num, text, Report};
use fmm_bench::timing;
use fmm_dense::{fill, norms, Matrix, Scalar};
use fmm_engine::FmmEngine;

struct Args {
    sizes: Vec<usize>,
    reps: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args { sizes: vec![256, 512, 1024], reps: 5, out: "BENCH_f32.json".to_string() };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--sizes" => {
                args.sizes = argv[i + 1]
                    .split(',')
                    .map(|s| s.parse().expect("--sizes takes comma-separated integers"))
                    .collect();
                i += 2;
            }
            "--reps" => {
                args.reps = argv[i + 1].parse().expect("--reps takes an integer");
                i += 2;
            }
            "--out" => {
                args.out = argv[i + 1].clone();
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let e64 = FmmEngine::<f64>::with_defaults();
    let e32 = FmmEngine::<f32>::with_defaults();

    let mut report = Report::new("f32_smoke");
    report.field("reps", int(args.reps as i64));
    for &n in &args.sizes {
        let a32 = fill::bench_workload_t::<f32>(n, n, 1);
        let b32 = fill::bench_workload_t::<f32>(n, n, 2);
        let a64 = a32.cast::<f64>();
        let b64 = b32.cast::<f64>();

        let mut c64 = Matrix::<f64>::zeros(n, n);
        let warm64 = timing::time_min(args.reps, || {
            c64.clear();
            e64.multiply(c64.as_mut(), a64.as_ref(), b64.as_ref());
        });
        let mut c32 = Matrix::<f32>::zeros(n, n);
        let warm32 = timing::time_min(args.reps, || {
            c32.clear();
            e32.multiply(c32.as_mut(), a32.as_ref(), b32.as_ref());
        });

        // Guard: the timed f32 result must actually be right.
        let err = norms::rel_error(c32.cast::<f64>().as_ref(), c64.as_ref());
        let bound = <f32 as Scalar>::accuracy_bound(n, 2);
        assert!(err < bound, "n={n}: f32 error {err} exceeds bound {bound}");

        let g64 = timing::gflops(n, n, n, warm64);
        let g32 = timing::gflops(n, n, n, warm32);
        println!(
            "{n:>5}³: f64 {g64:7.2} GFLOP/s | f32 {g32:7.2} GFLOP/s | speedup {:.2}x | err {err:.1e}",
            g32 / g64
        );
        report.row(&[
            ("size", int(n as i64)),
            ("gflops", num(g32)),
            ("f64_gflops", num(g64)),
            ("f32_gflops", num(g32)),
            ("f32_speedup", num(g32 / g64)),
            ("f64_decision", text(e64.decision_label(n, n, n))),
            ("f32_decision", text(e32.decision_label(n, n, n))),
            ("rel_error", num(err)),
        ]);
    }
    report.write(&args.out);
}
