//! `fmm_bench` — operate on saved benchmark reports.
//!
//! ```sh
//! fmm_bench compare OLD.json NEW.json [--tolerance 0.7] [--metric requests_per_sec]
//! ```
//!
//! `compare` is the CI regression gate between two runs of the same
//! report-producing binary (`serve_smoke`, `engine_smoke`, the fig
//! harnesses — anything emitting the shared `report` schema). Rows are
//! matched by their descriptive fields (`mode`, `size`, `dtype`, ...),
//! the chosen metric (default `requests_per_sec`, falling back to
//! `gflops` when a row has no request rate) is ratioed new/old, and any
//! matched row below `--tolerance` fails the run with exit 1. The floor
//! is deliberately lenient for the same reason `serve_smoke
//! --baseline`'s is: it exists to catch structural regressions — e.g.
//! audit instrumentation leaking onto the hot path — not run-to-run
//! noise on shared CI hardware.

use fmm_core::json::{self, Value};
use std::collections::BTreeMap;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("compare") => cmd_compare(&argv[1..]),
        _ => {
            eprintln!("usage: fmm_bench compare OLD.json NEW.json [--tolerance 0.7] [--metric M]");
            std::process::exit(2);
        }
    }
}

fn cmd_compare(argv: &[String]) {
    let mut paths = Vec::new();
    let mut tolerance = 0.7f64;
    let mut metric = "requests_per_sec".to_string();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--tolerance" => {
                tolerance = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fatal_usage("--tolerance takes a number"));
                i += 2;
            }
            "--metric" => {
                metric = argv
                    .get(i + 1)
                    .cloned()
                    .unwrap_or_else(|| fatal_usage("--metric takes a field name"));
                i += 2;
            }
            flag if flag.starts_with("--") => fatal_usage(&format!("unknown flag {flag}")),
            path => {
                paths.push(path.to_string());
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        fatal_usage("compare takes exactly two report paths");
    }
    let old_rows = load_rows(&paths[0]);
    let new_rows = load_rows(&paths[1]);

    let mut compared = 0usize;
    let mut failures = Vec::new();
    println!(
        "{:<40} {:>12} {:>12} {:>7}  metric",
        "row",
        format!("old ({})", short(&paths[0])),
        format!("new ({})", short(&paths[1])),
        "ratio"
    );
    for (identity, new_row) in &new_rows {
        let Some(old_row) = old_rows.get(identity) else {
            println!("{identity:<40} {:>12} {:>12}", "-", "(new row)");
            continue;
        };
        // Prefer the requested metric; fall back to gflops so the same
        // invocation covers throughput reports and compute reports.
        let Some((name, old_v, new_v)) = [metric.as_str(), "gflops"]
            .iter()
            .find_map(|key| Some((*key, metric_of(old_row, key)?, metric_of(new_row, key)?)))
        else {
            println!("{identity:<40} {:>12} {:>12}  (no comparable metric)", "-", "-");
            continue;
        };
        let ratio = if old_v > 0.0 { new_v / old_v } else { f64::INFINITY };
        compared += 1;
        println!("{identity:<40} {old_v:>12.2} {new_v:>12.2} {ratio:>6.2}x  {name}");
        if ratio < tolerance {
            failures.push(format!(
                "{identity}: {name} regressed to {ratio:.2}x ({new_v:.2} vs {old_v:.2}, \
                 floor {tolerance:.2})"
            ));
        }
    }
    if compared == 0 {
        eprintln!("fmm_bench compare: no rows in common between the two reports");
        std::process::exit(1);
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL {f}");
        }
        std::process::exit(1);
    }
    println!("{compared} rows compared, all within {tolerance:.2}x tolerance");
}

fn fatal_usage(message: &str) -> ! {
    eprintln!("fmm_bench compare: {message}");
    std::process::exit(2);
}

fn short(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// Parse a report file into rows keyed by their descriptive identity:
/// every string field plus small integer descriptors like `size`, joined
/// in field order. Rows whose identity collides keep the last one — the
/// schema never emits duplicate descriptor sets.
fn load_rows(path: &str) -> BTreeMap<String, BTreeMap<String, Value>> {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("fmm_bench compare: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let report = json::parse(&body).unwrap_or_else(|e| {
        eprintln!("fmm_bench compare: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let Value::Object(root) = report else {
        eprintln!("fmm_bench compare: {path} is not a report object");
        std::process::exit(1);
    };
    let Some(Value::Array(rows)) = root.get("rows") else {
        eprintln!("fmm_bench compare: {path} has no rows array");
        std::process::exit(1);
    };
    rows.iter()
        .filter_map(|row| {
            let Value::Object(row) = row else { return None };
            Some((identity_of(row), row.clone()))
        })
        .collect()
}

/// Descriptive identity of a row: its string fields plus the integer
/// descriptors that distinguish sweep points, in a fixed field order.
fn identity_of(row: &BTreeMap<String, Value>) -> String {
    const INT_DESCRIPTORS: [&str; 5] = ["size", "levels", "threads", "workers", "pipeline"];
    let mut parts = Vec::new();
    for (key, value) in row {
        match value {
            Value::String(s) => parts.push(format!("{key}={s}")),
            Value::Int(v) if INT_DESCRIPTORS.contains(&key.as_str()) => {
                parts.push(format!("{key}={v}"))
            }
            _ => {}
        }
    }
    if parts.is_empty() {
        "(row)".to_string()
    } else {
        parts.join(" ")
    }
}

fn metric_of(row: &BTreeMap<String, Value>, key: &str) -> Option<f64> {
    match row.get(key) {
        Some(Value::Number(v)) => Some(*v),
        Some(Value::Int(v)) => Some(*v as f64),
        _ => None,
    }
}
