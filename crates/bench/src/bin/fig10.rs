//! Figure 10: parallel performance of the best generated implementation
//! ("Ours": model-selected, measured top-2) versus the reference-style
//! implementation (the Naive variant, which mirrors Benson–Ballard's
//! explicit-`M_r` code) on three shape sweeps. Run with `--threads N`;
//! on a single-core host this still exercises the full parallel code path.

use fmm_bench::figure::Table;
use fmm_bench::{measure_fmm, measure_gemm, FigureParams};
use fmm_core::{registry::Registry, FmmPlan, Variant};
use fmm_gemm::BlockingParams;
use fmm_model::{rank_candidates, Impl};
use std::sync::Arc;

fn main() {
    let p = FigureParams::from_args();
    let params = BlockingParams::default();
    let arch = fmm_bench::runner::calibrated_arch(&params, p.scale);
    let reg = Registry::shared();

    let mut rows = reg.paper_rows();
    if p.limit_algos > 0 {
        rows.truncate(p.limit_algos);
    }
    let mut plans: Vec<Arc<FmmPlan>> = Vec::new();
    for (_, algo) in &rows {
        plans.push(Arc::new(FmmPlan::from_arcs(vec![algo.clone()])));
        plans.push(Arc::new(FmmPlan::from_arcs(vec![algo.clone(), algo.clone()])));
    }

    type Sweep = (&'static str, Vec<(usize, usize, usize)>);
    let sweeps: [Sweep; 3] = [
        ("m=k=n", p.k_sweep(&[2000, 6000, 12000]).iter().map(|&x| (rt(x), rt(x), rt(x))).collect()),
        ("m=n=14400s, k varies", {
            let mn = p.dim(14400, 144);
            p.k_sweep(&[1000, 4000, 12000]).iter().map(|&k| (mn, rt(k), mn)).collect()
        }),
        (
            "k=1024, m=n vary",
            p.k_sweep(&[2000, 6000, 12000]).iter().map(|&mn| (rt(mn), 1024, rt(mn))).collect(),
        ),
    ];

    for (sweep_name, points) in sweeps {
        let mut table = Table::new(
            format!("Figure 10: {} thread(s), {sweep_name}", p.threads),
            &["GEMM", "Ours(best)", "Reference(Naive)"],
        );
        for (m, k, n) in points {
            let gemm = measure_gemm(m, k, n, &params, &arch, p.reps, p.parallel());
            let ranked = rank_candidates(m, k, n, &plans, &Impl::FMM_VARIANTS, &arch, false);
            let ours = ranked
                .iter()
                .take(2)
                .map(|c| {
                    let plan = c.plan.as_ref().expect("plan");
                    let v = c.impl_.to_variant().expect("variant");
                    measure_fmm(plan, v, m, k, n, &params, &arch, p.reps, p.parallel()).actual
                })
                .fold(0.0, f64::max);
            // Reference role: Naive variant of the best-ranked plan.
            let ref_plan = ranked[0].plan.as_ref().expect("plan");
            let reference = measure_fmm(
                ref_plan,
                Variant::Naive,
                m,
                k,
                n,
                &params,
                &arch,
                p.reps,
                p.parallel(),
            )
            .actual;
            table.push(format!("{m}x{k}x{n}"), vec![gemm.actual, ours, reference]);
        }
        table.print(p.csv);
        println!();
    }
}

fn rt(x: usize) -> usize {
    (x.max(144) / 144) * 144
}
