//! Figure 6: one-level ABC / AB / Naive performance, actual vs modeled,
//! for `m = n = 14400·scale` with `k` varying — six panels (three variants
//! x {actual, modeled}), each a table with one row per algorithm and one
//! column per `k`.

use fmm_bench::figure::Table;
use fmm_bench::{measure_fmm, measure_gemm, FigureParams};
use fmm_core::{registry::Registry, FmmPlan, Variant};
use fmm_gemm::BlockingParams;

fn main() {
    let p = FigureParams::from_args();
    let params = BlockingParams::default();
    let arch = fmm_bench::runner::calibrated_arch(&params, p.scale);
    let reg = Registry::shared();

    let mn = p.dim(14400, 120);
    let ks = p.k_sweep(&[1000, 2000, 4000, 6000, 8000, 10000, 12000]);
    eprintln!("fig6: m=n={mn}, k in {ks:?}, reps={}", p.reps);

    let headers: Vec<String> = ks.iter().map(|k| format!("k={k}")).collect();
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rows = reg.paper_rows();
    if p.limit_algos > 0 {
        rows.truncate(p.limit_algos);
    }

    for variant in Variant::ALL {
        let mut actual = Table::new(
            format!("Figure 6: 1-level {} actual (m=n={mn})", variant.name()),
            &headers_ref,
        );
        let mut modeled = Table::new(
            format!("Figure 6: 1-level {} modeled (m=n={mn})", variant.name()),
            &headers_ref,
        );
        // The GEMM baseline row (same in every panel, as in the paper).
        let mut gemm_act = Vec::new();
        let mut gemm_mod = Vec::new();
        for &k in &ks {
            let g = measure_gemm(mn, k, mn, &params, &arch, p.reps, p.parallel());
            gemm_act.push(g.actual);
            gemm_mod.push(g.modeled);
        }
        actual.push("GEMM", gemm_act);
        modeled.push("GEMM", gemm_mod);

        for (entry, algo) in &rows {
            let plan = FmmPlan::from_arcs(vec![algo.clone()]);
            let mut act = Vec::new();
            let mut mdl = Vec::new();
            for &k in &ks {
                let m =
                    measure_fmm(&plan, variant, mn, k, mn, &params, &arch, p.reps, p.parallel());
                act.push(m.actual);
                mdl.push(m.modeled);
            }
            let (mt, kt, nt) = entry.dims;
            actual.push(format!("<{mt},{kt},{nt}>"), act);
            modeled.push(format!("<{mt},{kt},{nt}>"), mdl);
        }
        actual.print(p.csv);
        modeled.print(p.csv);
        println!();
    }
}
