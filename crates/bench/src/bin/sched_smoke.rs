//! Scheduler performance smoke test: DFS vs BFS vs hybrid warm timings
//! per shape, plus batched vs sequential engine throughput, emitted as
//! `BENCH_sched.json` so successive PRs accumulate a perf trajectory.
//!
//! ```sh
//! cargo run --release -p fmm-bench --bin sched_smoke \
//!     [-- --sizes 256,512,1024 --reps 5 --batch 64 --batch-size 256 --out BENCH_sched.json]
//! ```
//!
//! Strategy timings run two-level Strassen (`<2,2,2>+<2,2,2>`, ABC) through
//! `fmm_sched::execute` on a warm `SchedContext`; the batch section runs a
//! parallel model-routed `FmmEngine`, comparing one `multiply_batch` of N
//! problems against N sequential `multiply` calls on the same warm engine.
//! On a single-core runner every schedule collapses to sequential
//! execution, so expect parity there; the interesting numbers need
//! `RAYON_NUM_THREADS > 1`.

use fmm_bench::report::{int, num, object, text, Report};
use fmm_bench::timing;
use fmm_core::{registry, FmmPlan, Strategy, Variant};
use fmm_dense::{fill, Matrix};
use fmm_engine::{BatchItem, EngineConfig, FmmEngine};
use fmm_sched::SchedContext;

struct Args {
    sizes: Vec<usize>,
    reps: usize,
    batch: usize,
    batch_size: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        sizes: vec![256, 512, 1024],
        reps: 5,
        batch: 64,
        batch_size: 256,
        out: "BENCH_sched.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--sizes" => {
                args.sizes = argv[i + 1]
                    .split(',')
                    .map(|s| s.parse().expect("--sizes takes comma-separated integers"))
                    .collect();
                i += 2;
            }
            "--reps" => {
                args.reps = argv[i + 1].parse().expect("--reps takes an integer");
                i += 2;
            }
            "--batch" => {
                args.batch = argv[i + 1].parse().expect("--batch takes an integer");
                i += 2;
            }
            "--batch-size" => {
                args.batch_size = argv[i + 1].parse().expect("--batch-size takes an integer");
                i += 2;
            }
            "--out" => {
                args.out = argv[i + 1].clone();
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// Warm timing of one strategy on a reused context.
fn time_strategy(
    n: usize,
    plan: &FmmPlan,
    strategy: Strategy,
    ctx: &mut SchedContext,
    reps: usize,
) -> f64 {
    let a = fill::bench_workload(n, n, 1);
    let b = fill::bench_workload(n, n, 2);
    let mut c = Matrix::zeros(n, n);
    // Warmup: size every workspace, fill every pool.
    fmm_sched::execute(c.as_mut(), a.as_ref(), b.as_ref(), plan, Variant::Abc, strategy, ctx, 0);
    timing::time_min(reps, || {
        fmm_sched::execute(
            c.as_mut(),
            a.as_ref(),
            b.as_ref(),
            plan,
            Variant::Abc,
            strategy,
            ctx,
            0,
        );
    })
}

fn main() {
    let args = parse_args();
    let plan = FmmPlan::uniform(registry::strassen(), 2);

    let mut report = Report::new("sched_smoke");
    report.field("reps", int(args.reps as i64));
    for &n in &args.sizes {
        let mut ctx = SchedContext::with_defaults();
        let dfs = time_strategy(n, &plan, Strategy::Dfs, &mut ctx, args.reps);
        let bfs = time_strategy(n, &plan, Strategy::Bfs, &mut ctx, args.reps);
        let hybrid = time_strategy(n, &plan, Strategy::Hybrid, &mut ctx, args.reps);
        let best = [(dfs, "DFS"), (bfs, "BFS"), (hybrid, "Hybrid")]
            .into_iter()
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite timings"))
            .expect("non-empty");
        println!(
            "{n}^3: DFS {:.2} ms, BFS {:.2} ms, hybrid {:.2} ms -> {}",
            dfs * 1e3,
            bfs * 1e3,
            hybrid * 1e3,
            best.1
        );
        report.row(&[
            ("size", int(n as i64)),
            ("gflops", num(timing::gflops(n, n, n, best.0))),
            ("dfs_ms", num(dfs * 1e3)),
            ("bfs_ms", num(bfs * 1e3)),
            ("hybrid_ms", num(hybrid * 1e3)),
            ("dfs_effective_gflops", num(timing::gflops(n, n, n, dfs))),
            ("bfs_speedup_vs_dfs", num(dfs / bfs)),
            ("hybrid_speedup_vs_dfs", num(dfs / hybrid)),
            ("best", text(best.1)),
        ]);
    }

    // Batched vs sequential throughput on a warm parallel engine.
    let engine = FmmEngine::new(EngineConfig { parallel: true, ..EngineConfig::default() });
    let n = args.batch_size;
    let items_n = args.batch;
    let a: Vec<Matrix> = (0..items_n).map(|i| fill::bench_workload(n, n, i as u64 + 1)).collect();
    let b: Vec<Matrix> = (0..items_n).map(|i| fill::bench_workload(n, n, i as u64 + 100)).collect();
    let mut cs: Vec<Matrix> = (0..items_n).map(|_| Matrix::zeros(n, n)).collect();
    // Warm the decision cache and workspaces once.
    engine.multiply(cs[0].as_mut(), a[0].as_ref(), b[0].as_ref());

    let sequential_secs = timing::time_min(2, || {
        for i in 0..items_n {
            engine.multiply(cs[i].as_mut(), a[i].as_ref(), b[i].as_ref());
        }
    });
    let batch_secs = timing::time_min(2, || {
        let mut items: Vec<BatchItem<'_>> = cs
            .iter_mut()
            .zip(a.iter().zip(b.iter()))
            .map(|(c, (a, b))| BatchItem::new(c.as_mut(), a.as_ref(), b.as_ref()))
            .collect();
        engine.multiply_batch(&mut items);
    });
    let seq_rate = items_n as f64 / sequential_secs;
    let batch_rate = items_n as f64 / batch_secs;
    println!(
        "batch {items_n} x {n}^3: sequential {:.1} calls/s, batched {:.1} calls/s ({:.2}x)",
        seq_rate,
        batch_rate,
        batch_rate / seq_rate
    );

    report.field("decision", text(engine.decision_label(n, n, n))).field(
        "batch",
        object(&[
            ("items", int(items_n as i64)),
            ("n", int(n as i64)),
            ("sequential_ms", num(sequential_secs * 1e3)),
            ("batch_ms", num(batch_secs * 1e3)),
            ("sequential_calls_per_sec", num(seq_rate)),
            ("batch_calls_per_sec", num(batch_rate)),
            ("batch_speedup", num(batch_rate / seq_rate)),
        ]),
    );
    report.write(&args.out);
}
