//! Autotuning smoke benchmark: model-routed vs tuned-routed engine
//! throughput at 256³ / 512³ / 1024³, emitted as `BENCH_tune.json`.
//!
//! ```sh
//! cargo run --release -p fmm-bench --bin tune_smoke \
//!     [-- --sizes 256,512,1024 --reps 3 --top-k 4 --out BENCH_tune.json]
//! ```
//!
//! The flow is the production flow: calibrate this host, explore each
//! size with the `Tuner` (verified winners recorded into a private
//! `TuneStore`), then serve the same sizes through two engines sharing
//! the calibrated `ArchParams` — one `Routing::Model`, one
//! `Routing::Tuned` over the warm store. The tuned engine must answer
//! every size from the store (zero model rankings, asserted via
//! `EngineStats`) and its results are checked against blocked GEMM, so a
//! routing bug can never masquerade as a speedup.

use fmm_bench::report::{int, latency_fields, num, text, Report};
use fmm_bench::timing;
use fmm_dense::{fill, norms, Matrix};
use fmm_engine::{EngineConfig, FmmEngine, Routing};
use fmm_gemm::BlockingParams;
use fmm_tune::{calibrate_host, TunePolicy, TuneStore, Tuner};
use std::sync::Arc;

struct Args {
    sizes: Vec<usize>,
    reps: usize,
    top_k: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args =
        Args { sizes: vec![256, 512, 1024], reps: 3, top_k: 4, out: "BENCH_tune.json".to_string() };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--sizes" => {
                args.sizes = argv[i + 1]
                    .split(',')
                    .map(|s| s.parse().expect("--sizes takes comma-separated integers"))
                    .collect();
                i += 2;
            }
            "--reps" => {
                args.reps = argv[i + 1].parse().expect("--reps takes an integer");
                i += 2;
            }
            "--top-k" => {
                args.top_k = argv[i + 1].parse().expect("--top-k takes an integer");
                i += 2;
            }
            "--out" => {
                args.out = argv[i + 1].clone();
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();

    // Stage 1: calibrate this host (private to the benchmark — the user's
    // store is not touched).
    let arch = calibrate_host::<f64>(&BlockingParams::default(), 0.25);
    println!(
        "calibrated: peak {:.2} GFLOP/s, bandwidth {:.2} GB/s, lambda {:.2}",
        arch.peak_gflops(),
        8.0 / arch.tau_b / 1e9,
        arch.lambda
    );

    // Stage 2: explore each size, recording verified winners.
    let mut store = TuneStore::new();
    let policy =
        TunePolicy { top_k: args.top_k, warmup: 1, reps: args.reps, ..TunePolicy::default() };
    let tuner = Tuner::new(policy, 1, 2);
    for &n in &args.sizes {
        let outcome = tuner.explore::<f64>(&mut store, &arch, n, n, n);
        println!(
            "{n}³ tuned -> {} at {:.2} GFLOP/s (model picked {})",
            outcome.winner, outcome.winner_gflops, outcome.model_pick
        );
    }

    // Stage 3: serve through both routings on the same calibrated arch.
    let model_engine =
        FmmEngine::<f64>::new(EngineConfig { arch: arch.into(), ..Default::default() });
    let tuned_engine = FmmEngine::<f64>::new(EngineConfig {
        arch: arch.into(),
        routing: Routing::Tuned { store: Arc::new(store) },
        ..Default::default()
    });

    let mut report = Report::new("tune_smoke");
    report.field("reps", int(args.reps as i64)).field("top_k", int(args.top_k as i64));
    for &n in &args.sizes {
        let a = fill::bench_workload(n, n, 1);
        let b = fill::bench_workload(n, n, 2);

        // Interleave the two engines' samples (min of each): container
        // drift between two back-to-back measurement windows would
        // otherwise masquerade as a routing difference.
        let mut c_model = Matrix::zeros(n, n);
        let mut c_tuned = Matrix::zeros(n, n);
        let mut run_model = || {
            c_model.clear();
            model_engine.multiply(c_model.as_mut(), a.as_ref(), b.as_ref());
        };
        let mut run_tuned = || {
            c_tuned.clear();
            tuned_engine.multiply(c_tuned.as_mut(), a.as_ref(), b.as_ref());
        };
        run_model(); // warmup: decisions, plans, arenas
        run_tuned();
        // Keep every sample: min for the headline GFLOP/s (classic
        // benchmark convention), the full distribution for the latency
        // columns — the serving story cares about p99, not best-case.
        let mut model_samples = Vec::with_capacity(args.reps.max(1));
        let mut tuned_samples = Vec::with_capacity(args.reps.max(1));
        for _ in 0..args.reps.max(1) {
            let t0 = std::time::Instant::now();
            run_model();
            model_samples.push(t0.elapsed().as_secs_f64());
            let t1 = std::time::Instant::now();
            run_tuned();
            tuned_samples.push(t1.elapsed().as_secs_f64());
        }
        let fold_min = |samples: &[f64]| samples.iter().copied().fold(f64::INFINITY, f64::min);
        let model_secs = fold_min(&model_samples);
        let tuned_secs = fold_min(&tuned_samples);

        // Guard: the timed tuned result must actually be right.
        let mut c_ref = Matrix::zeros(n, n);
        fmm_gemm::gemm(c_ref.as_mut(), a.as_ref(), b.as_ref());
        let err = norms::rel_error(c_tuned.as_ref(), c_ref.as_ref());
        let tol = norms::fmm_tolerance(n, 2);
        assert!(err < tol, "n={n}: tuned-routed error {err} exceeds {tol}");

        let g_model = timing::gflops(n, n, n, model_secs);
        let g_tuned = timing::gflops(n, n, n, tuned_secs);
        println!(
            "{n:>5}³: model {g_model:7.2} GFLOP/s ({}) | tuned {g_tuned:7.2} GFLOP/s ({}) | {:.2}x",
            model_engine.decision_label(n, n, n),
            tuned_engine.decision_label(n, n, n),
            g_tuned / g_model
        );
        let mut entries = vec![
            ("size", int(n as i64)),
            ("gflops", num(g_tuned)),
            ("model_gflops", num(g_model)),
            ("tuned_gflops", num(g_tuned)),
            ("tuned_speedup", num(g_tuned / g_model)),
            ("model_decision", text(model_engine.decision_label(n, n, n))),
            ("tuned_decision", text(tuned_engine.decision_label(n, n, n))),
            ("rel_error", num(err)),
        ];
        // Latency columns over the tuned engine's full sample set.
        entries.extend(latency_fields(&tuned_samples));
        report.row(&entries);
    }

    // The tuned engine must have answered every size from the store.
    let stats = tuned_engine.stats();
    assert_eq!(stats.rankings, 0, "tuned routing must not re-rank stored classes");
    assert_eq!(stats.tuned_hits, args.sizes.len() as u64, "every size answered by the store");
    assert_eq!(stats.tuned_misses, 0);
    report.field(
        "stats",
        fmm_bench::report::object(&[
            ("tuned_hits", int(stats.tuned_hits as i64)),
            ("tuned_misses", int(stats.tuned_misses as i64)),
            ("rankings", int(stats.rankings as i64)),
        ]),
    );
    report.write(&args.out);
}
