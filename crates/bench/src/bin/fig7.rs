//! Figure 7: two-level ABC performance, actual vs modeled, on three shape
//! regimes: square (`m = k = n`), rank-k (`m = n = 14400·scale`, `k`
//! varies), and fixed-depth (`k = 1024`, `m = n` vary) — six panels.

use fmm_bench::figure::Table;
use fmm_bench::{measure_fmm, measure_gemm, FigureParams};
use fmm_core::{registry::Registry, FmmPlan, Variant};
use fmm_gemm::BlockingParams;
use std::sync::Arc;

fn main() {
    let p = FigureParams::from_args();
    let params = BlockingParams::default();
    let arch = fmm_bench::runner::calibrated_arch(&params, p.scale);
    let reg = Registry::shared();

    let mut rows = reg.paper_rows();
    if p.limit_algos > 0 {
        rows.truncate(p.limit_algos);
    }

    // Two-level plans: the same algorithm at both levels (the hybrid case
    // is Figure 9's subject).
    let plans: Vec<(String, Arc<FmmPlan>)> = rows
        .iter()
        .map(|(e, a)| {
            let (mt, kt, nt) = e.dims;
            (format!("<{mt},{kt},{nt}>"), Arc::new(FmmPlan::from_arcs(vec![a.clone(), a.clone()])))
        })
        .collect();

    type Sweep = (&'static str, Vec<(usize, usize, usize)>);
    let sweeps: [Sweep; 3] = [
        ("m=k=n", {
            let pts = p.k_sweep(&[2000, 4000, 6000, 8000, 10000, 12000]);
            pts.iter().map(|&x| (round_to(x, 144), round_to(x, 144), round_to(x, 144))).collect()
        }),
        ("m=n=14400s, k varies", {
            let mn = p.dim(14400, 144);
            p.k_sweep(&[1000, 2000, 4000, 8000, 12000])
                .iter()
                .map(|&k| (mn, round_to(k, 36), mn))
                .collect()
        }),
        ("k=1024, m=n vary", {
            p.k_sweep(&[2000, 4000, 8000, 12000])
                .iter()
                .map(|&mn| (round_to(mn, 144), 1024, round_to(mn, 144)))
                .collect()
        }),
    ];

    for (sweep_name, points) in sweeps {
        let headers: Vec<String> = points.iter().map(|&(m, k, n)| format!("{m}x{k}x{n}")).collect();
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut actual =
            Table::new(format!("Figure 7: 2-level ABC actual ({sweep_name})"), &headers_ref);
        let mut modeled =
            Table::new(format!("Figure 7: 2-level ABC modeled ({sweep_name})"), &headers_ref);

        let mut gemm_act = Vec::new();
        let mut gemm_mod = Vec::new();
        for &(m, k, n) in &points {
            let g = measure_gemm(m, k, n, &params, &arch, p.reps, p.parallel());
            gemm_act.push(g.actual);
            gemm_mod.push(g.modeled);
        }
        actual.push("GEMM", gemm_act);
        modeled.push("GEMM", gemm_mod);

        for (label, plan) in &plans {
            let mut act = Vec::new();
            let mut mdl = Vec::new();
            for &(m, k, n) in &points {
                let meas =
                    measure_fmm(plan, Variant::Abc, m, k, n, &params, &arch, p.reps, p.parallel());
                act.push(meas.actual);
                mdl.push(meas.modeled);
            }
            actual.push(label.clone(), act);
            modeled.push(label.clone(), mdl);
        }
        actual.print(p.csv);
        modeled.print(p.csv);
        println!();
    }
}

fn round_to(x: usize, multiple: usize) -> usize {
    (x.max(multiple) / multiple) * multiple
}
