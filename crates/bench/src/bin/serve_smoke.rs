//! Serving smoke benchmark: the `fmm-serve` daemon under concurrent
//! client load, micro-batched versus one-request-at-a-time, emitted as
//! `BENCH_serve.json`.
//!
//! ```sh
//! cargo run --release -p fmm-bench --bin serve_smoke \
//!     [-- --threads 8 --requests 60 --size 64 --window-us 0 \
//!         --gap-us 200 --max-batch 16 --pipeline 8 --out BENCH_serve.json \
//!         --baseline OLD_BENCH_serve.json]
//! ```
//!
//! Three daemons run in-process on loopback ports, sharing one warm
//! engine pair so the comparison isolates the *dispatch policy*: first
//! `max_batch = 1` with blocking clients (every request is its own
//! `multiply_batch` call — what a naive thread-per-request server would
//! do), then the window/size micro-batching policy under the same
//! blocking clients, then the same policy under protocol-v2 *pipelined*
//! clients each keeping `--pipeline` requests in flight per connection.
//! Each mode serves N client threads × M requests over real TCP
//! connections. The report carries aggregate throughput, client-observed
//! latency percentiles, and the server-side occupancy metrics that prove
//! requests actually coalesced; the first response of every thread is
//! verified against the blocked-GEMM reference so a serving bug cannot
//! masquerade as a speedup.

use fmm_bench::report::{int, latency_fields, num, object, text, Report};
use fmm_core::json::{self, Value};
use fmm_dense::{fill, norms, Matrix};
use fmm_engine::{ArchSource, EngineConfig, FmmEngine};
use fmm_serve::{BatchPolicy, Client, MetricsSnapshot, PipelinedClient, ServeConfig, Server};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    threads: usize,
    requests: usize,
    size: usize,
    window_us: u64,
    gap_us: u64,
    max_batch: usize,
    pipeline: usize,
    out: String,
    baseline: Option<String>,
}

fn parse_args() -> Args {
    // Defaults sized for the overhead-dominated regime where dispatch
    // policy is visible on a single core: at 32^3 the per-request frame +
    // wakeup cost rivals the compute, so coalescing and pipelining show
    // up as throughput rather than disappearing under the GEMM.
    let mut args = Args {
        threads: 8,
        requests: 120,
        size: 32,
        window_us: 0,
        gap_us: 200,
        max_batch: 16,
        pipeline: 16,
        out: "BENCH_serve.json".to_string(),
        baseline: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--threads" => {
                args.threads = argv[i + 1].parse().expect("--threads takes an integer");
                i += 2;
            }
            "--requests" => {
                args.requests = argv[i + 1].parse().expect("--requests takes an integer");
                i += 2;
            }
            "--size" => {
                args.size = argv[i + 1].parse().expect("--size takes an integer");
                i += 2;
            }
            "--window-us" => {
                args.window_us = argv[i + 1].parse().expect("--window-us takes an integer");
                i += 2;
            }
            "--gap-us" => {
                args.gap_us = argv[i + 1].parse().expect("--gap-us takes an integer");
                i += 2;
            }
            "--max-batch" => {
                args.max_batch = argv[i + 1].parse().expect("--max-batch takes an integer");
                i += 2;
            }
            "--pipeline" => {
                args.pipeline = argv[i + 1].parse().expect("--pipeline takes an integer");
                i += 2;
            }
            "--out" => {
                args.out = argv[i + 1].clone();
                i += 2;
            }
            "--baseline" => {
                args.baseline = Some(argv[i + 1].clone());
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

struct ModeResult {
    rps: f64,
    gflops: f64,
    samples_secs: Vec<f64>,
    metrics: MetricsSnapshot,
    registry: Value,
}

fn verify_first(a: &Matrix<f64>, b: &Matrix<f64>, c: &Matrix<f64>) {
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    let err = norms::rel_error(c.as_ref(), c_ref.as_ref());
    assert!(err < 1e-9, "served result diverged: {err}");
}

/// One blocking client's share of the load: `requests` round-trips on one
/// v1 connection, first response verified.
fn drive_blocking(addr: SocketAddr, n: usize, requests: usize, seed: u64) -> Vec<f64> {
    let mut client = Client::connect(addr).expect("connect");
    let a = fill::bench_workload(n, n, 2 * seed + 1);
    let b = fill::bench_workload(n, n, 2 * seed + 2);
    let mut samples = Vec::with_capacity(requests);
    for i in 0..requests {
        let t0 = Instant::now();
        let c = client.multiply(&a, &b).expect("served");
        samples.push(t0.elapsed().as_secs_f64());
        if i == 0 {
            verify_first(&a, &b, &c);
        }
    }
    samples
}

/// One pipelined client's share: a single protocol-v2 connection keeping
/// up to `depth` requests in flight, responses matched by request id.
/// Latency is send → matched response; `Busy` refusals re-send without
/// resetting the clock.
fn drive_pipelined(
    addr: SocketAddr,
    n: usize,
    requests: usize,
    seed: u64,
    depth: usize,
) -> Vec<f64> {
    let mut client = PipelinedClient::connect(addr).expect("connect");
    let a = fill::bench_workload(n, n, 2 * seed + 1);
    let b = fill::bench_workload(n, n, 2 * seed + 2);
    let mut samples = Vec::with_capacity(requests);
    let mut window: VecDeque<(u64, Instant)> = VecDeque::with_capacity(depth);
    let mut sent = 0usize;
    let mut verified = false;
    while samples.len() < requests {
        while sent < requests && window.len() < depth {
            let t0 = Instant::now();
            window.push_back((client.send(&a, &b).expect("send"), t0));
            sent += 1;
        }
        let (id, t0) = window.pop_front().expect("in-flight window empty");
        match client.recv::<f64>(id) {
            Ok(c) => {
                samples.push(t0.elapsed().as_secs_f64());
                if !verified {
                    verified = true;
                    verify_first(&a, &b, &c);
                }
            }
            Err(e) if e.is_busy() => {
                std::thread::sleep(Duration::from_micros(200));
                window.push_back((client.send(&a, &b).expect("re-send"), t0));
            }
            Err(e) => panic!("pipelined request failed: {e}"),
        }
    }
    samples
}

/// Serve one mode: spawn a daemon with `policy` over the shared engines,
/// drive it with `threads × requests` clients (blocking when `depth` is
/// 0, pipelined `depth`-deep otherwise), shut it down, and return
/// throughput + latency + the server's own metrics.
fn run_mode(
    policy: BatchPolicy,
    args: &Args,
    engines: &(Arc<FmmEngine<f64>>, Arc<FmmEngine<f32>>),
    depth: usize,
) -> ModeResult {
    let handle = Server::spawn_with_engines(
        ServeConfig { batch: policy, ..ServeConfig::default() },
        engines.0.clone(),
        engines.1.clone(),
    )
    .expect("bind loopback");
    let addr = handle.addr();
    let n = args.size;

    // Warmup outside the timed region: decisions, plans, arenas, and the
    // TCP stacks.
    {
        let mut client = Client::connect(addr).expect("connect");
        let a = fill::bench_workload(n, n, 1);
        let b = fill::bench_workload(n, n, 2);
        client.multiply(&a, &b).expect("warmup");
    }
    let warmup = handle.metrics().snapshot();

    let t0 = Instant::now();
    let per_thread: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.threads)
            .map(|t| {
                s.spawn(move || {
                    if depth == 0 {
                        drive_blocking(addr, n, args.requests, t as u64)
                    } else {
                        drive_pipelined(addr, n, args.requests, t as u64, depth)
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall = t0.elapsed().as_secs_f64();

    let metrics = handle.metrics().snapshot();
    // Full registry snapshot (counters, gauges, per-phase histograms) —
    // the same body `fmm_serve stats --json` serves over the wire.
    let registry = handle.stats_json();
    handle.shutdown();

    let samples_secs: Vec<f64> = per_thread.into_iter().flatten().collect();
    let total = samples_secs.len();
    let flops = 2.0 * (n as f64).powi(3) * total as f64;
    let mut metrics = metrics;
    // Only count timed-region batches for occupancy reporting.
    metrics.batches -= warmup.batches;
    metrics.batched_items -= warmup.batched_items;
    metrics.mean_occupancy = if metrics.batches > 0 {
        metrics.batched_items as f64 / metrics.batches as f64
    } else {
        0.0
    };
    ModeResult {
        rps: total as f64 / wall,
        gflops: flops / wall / 1e9,
        samples_secs,
        metrics,
        registry,
    }
}

/// Regression guard against a previous report: compare this run's
/// pipelined throughput to the `mode == "pipelined"` row of an earlier
/// `BENCH_serve.json`. The floor is deliberately lenient — it exists to
/// catch structural regressions (e.g. instrumentation on the hot path),
/// not run-to-run noise.
fn check_baseline(path: &str, pipelined_rps: f64) {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--baseline {path}: unreadable: {e}"));
    let old = json::parse(&body).unwrap_or_else(|e| panic!("--baseline {path}: bad JSON: {e}"));
    let Value::Object(root) = &old else { panic!("--baseline {path}: not an object") };
    let Some(Value::Array(rows)) = root.get("rows") else {
        panic!("--baseline {path}: no rows array")
    };
    let old_rps = rows
        .iter()
        .find_map(|row| {
            let Value::Object(row) = row else { return None };
            match (row.get("mode"), row.get("requests_per_sec")) {
                (Some(Value::String(mode)), Some(Value::Number(rps))) if mode == "pipelined" => {
                    Some(*rps)
                }
                _ => None,
            }
        })
        .unwrap_or_else(|| panic!("--baseline {path}: no pipelined row with requests_per_sec"));
    let ratio = pipelined_rps / old_rps;
    println!("pipelined vs baseline {path}: {pipelined_rps:.1} / {old_rps:.1} = {ratio:.2}x");
    assert!(
        ratio >= 0.7,
        "pipelined throughput regressed to {ratio:.2}x of the baseline ({pipelined_rps:.1} \
         req/s vs {old_rps:.1} req/s in {path})"
    );
}

fn main() {
    let args = parse_args();

    // One warm engine pair shared by both modes, so the measured delta is
    // dispatch policy, not cache state. Calibrated arch (the serving
    // default), model routing: the tune store is not part of this story.
    let config =
        EngineConfig { parallel: true, arch: ArchSource::Calibrated, ..EngineConfig::default() };
    let engines =
        (Arc::new(FmmEngine::<f64>::new(config.clone())), Arc::new(FmmEngine::<f32>::new(config)));

    println!(
        "serve_smoke: {} threads x {} requests, {}^3 f64, window {} us (gap {} us), \
         max batch {}, pipeline {}",
        args.threads,
        args.requests,
        args.size,
        args.window_us,
        args.gap_us,
        args.max_batch,
        args.pipeline
    );

    // Mode 1: one-request-at-a-time dispatch (the baseline a serving
    // layer must beat to justify existing).
    let unbatched = run_mode(
        BatchPolicy { window: Duration::ZERO, max_batch: 1, straggler_gap: Duration::ZERO },
        &args,
        &engines,
        0,
    );
    println!(
        "unbatched: {:7.1} req/s  {:6.2} GFLOP/s  (occupancy mean {:.2})",
        unbatched.rps, unbatched.gflops, unbatched.metrics.mean_occupancy
    );

    // Mode 2: cross-request micro-batching under blocking clients.
    let policy = BatchPolicy {
        window: Duration::from_micros(args.window_us),
        max_batch: args.max_batch.max(1),
        straggler_gap: Duration::from_micros(args.gap_us),
    };
    let batched = run_mode(policy, &args, &engines, 0);
    println!(
        "batched:   {:7.1} req/s  {:6.2} GFLOP/s  (occupancy mean {:.2}, max {}, {} batches)",
        batched.rps,
        batched.gflops,
        batched.metrics.mean_occupancy,
        batched.metrics.max_occupancy,
        batched.metrics.batches
    );

    // Mode 3: the same micro-batching policy under pipelined v2 clients —
    // each connection keeps `--pipeline` requests in flight, so the batch
    // window fills without needing one blocked OS thread per in-flight
    // request.
    let pipelined = run_mode(policy, &args, &engines, args.pipeline.max(1));
    println!(
        "pipelined: {:7.1} req/s  {:6.2} GFLOP/s  (occupancy mean {:.2}, max {}, {} batches)",
        pipelined.rps,
        pipelined.gflops,
        pipelined.metrics.mean_occupancy,
        pipelined.metrics.max_occupancy,
        pipelined.metrics.batches
    );
    let speedup = batched.rps / unbatched.rps;
    let pipelined_speedup = pipelined.rps / unbatched.rps;
    println!("batched/unbatched throughput:   {speedup:.2}x");
    println!("pipelined/unbatched throughput: {pipelined_speedup:.2}x");
    assert!(
        batched.metrics.max_occupancy > 1,
        "micro-batching never coalesced — policy or load misconfigured"
    );
    assert!(
        pipelined.metrics.max_occupancy > 1,
        "pipelined clients never coalesced — policy or load misconfigured"
    );
    if let Some(baseline) = &args.baseline {
        check_baseline(baseline, pipelined.rps);
    }

    let mut report = Report::new("serve_smoke");
    report
        .field("threads", int(args.threads as i64))
        .field("requests_per_thread", int(args.requests as i64))
        .field("window_us", int(args.window_us as i64))
        .field("gap_us", int(args.gap_us as i64))
        .field("max_batch", int(args.max_batch as i64))
        .field("pipeline_depth", int(args.pipeline as i64))
        .field("batched_speedup", num(speedup))
        .field("pipelined_speedup", num(pipelined_speedup));
    for (mode, result) in
        [("unbatched", &unbatched), ("batched", &batched), ("pipelined", &pipelined)]
    {
        let mut entries = vec![
            ("size", int(args.size as i64)),
            ("gflops", num(result.gflops)),
            ("mode", text(mode)),
            ("requests_per_sec", num(result.rps)),
            ("batches", int(result.metrics.batches as i64)),
            ("occupancy_mean", num(result.metrics.mean_occupancy)),
            ("occupancy_max", int(result.metrics.max_occupancy as i64)),
            ("rejects_busy", int(result.metrics.rejects_busy as i64)),
        ];
        entries.extend(latency_fields(&result.samples_secs));
        report.row(&entries);
    }
    let (s64, _s32) = (engines.0.stats(), engines.1.stats());
    report.field(
        "engine_f64",
        object(&[
            ("executions", int(s64.executions as i64)),
            ("batches", int(s64.batches as i64)),
            ("batch_items", int(s64.batch_items as i64)),
            ("rankings", int(s64.rankings as i64)),
        ]),
    );
    // The pipelined mode's full registry snapshot rides along in the
    // report, so trajectory tooling sees the per-phase histograms
    // (queue-wait, service, pack, kernel) without a live daemon.
    report.field("registry", pipelined.registry);
    report.write(&args.out);
}
