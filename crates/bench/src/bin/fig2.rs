//! Figure 2 (the algorithm table): theoretical and practical speedups of
//! the 23-algorithm family versus blocked GEMM.
//!
//! Columns reproduce the paper's table: classical sub-multiplications
//! `m̃k̃ñ`, rank `R` (ours and published), theoretical speedup per level,
//! and the two practical one-level speedups — Practical #1 on a rank-k
//! update (`m = n = 14400·scale`, `k = 480` absolute) and Practical #2 on a
//! near-square problem (`k = 12000·scale`). Practical speedups take the
//! best of the ABC/AB/Naive variants, as the paper reports its best
//! generated implementation.

use fmm_bench::figure::Table;
use fmm_bench::{measure_fmm, measure_gemm, FigureParams};
use fmm_core::{registry::Registry, FmmPlan, Variant};
use fmm_gemm::BlockingParams;

fn main() {
    let p = FigureParams::from_args();
    let params = BlockingParams::default();
    let arch = fmm_bench::runner::calibrated_arch(&params, p.scale);
    let reg = Registry::shared();

    let mn = p.dim(14400, 120); // divisible by every m̃·ñ pair up to 6x6
    let k1 = 480; // rank-k update: absolute, ~2·kc
    let k2 = p.dim(12000, 120);
    eprintln!(
        "fig2: m=n={mn}, k1={k1}, k2={k2}, reps={}, kernel={}",
        p.reps,
        fmm_gemm::kernel::selected_name()
    );

    let gemm1 = measure_gemm(mn, k1, mn, &params, &arch, p.reps, p.parallel());
    let gemm2 = measure_gemm(mn, k2, mn, &params, &arch, p.reps, p.parallel());

    let mut table = Table::new(
        format!(
            "Figure 2: FMM family speedups (scale {}, GEMM {:.2}/{:.2} GFLOPS)",
            p.scale, gemm1.actual, gemm2.actual
        ),
        &["mkn", "R", "R_paper", "theory%", "theory_paper%", "practical1%", "practical2%"],
    );

    let mut rows = reg.paper_rows();
    if p.limit_algos > 0 {
        rows.truncate(p.limit_algos);
    }
    for (entry, algo) in rows {
        let plan = FmmPlan::from_arcs(vec![algo.clone()]);
        let best = |k: usize, gemm_gflops: f64| -> f64 {
            let mut best = f64::NEG_INFINITY;
            for v in Variant::ALL {
                let m = measure_fmm(&plan, v, mn, k, mn, &params, &arch, p.reps, p.parallel());
                best = best.max(m.actual);
            }
            (best / gemm_gflops - 1.0) * 100.0
        };
        let practical1 = best(k1, gemm1.actual);
        let practical2 = best(k2, gemm2.actual);
        let (mt, kt, nt) = entry.dims;
        table.push(
            format!("<{mt},{kt},{nt}>"),
            vec![
                (mt * kt * nt) as f64,
                algo.rank() as f64,
                entry.r_paper as f64,
                (algo.speedup_per_level() - 1.0) * 100.0,
                ((mt * kt * nt) as f64 / entry.r_paper as f64 - 1.0) * 100.0,
                practical1,
                practical2,
            ],
        );
    }
    table.print(p.csv);
}
