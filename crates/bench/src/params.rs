//! Command-line parameters shared by the figure binaries.

/// Parsed harness parameters.
#[derive(Clone, Debug)]
pub struct FigureParams {
    /// Linear scale on the paper's `m = n = 14400`-class dimensions.
    pub scale: f64,
    /// Timed repetitions per point (after one warm-up).
    pub reps: usize,
    /// rayon threads (1 = sequential executors).
    pub threads: usize,
    /// Restrict to the first N algorithms of the Figure 2 table (0 = all).
    pub limit_algos: usize,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
}

impl Default for FigureParams {
    fn default() -> Self {
        Self { scale: 0.1, reps: 1, threads: 1, limit_algos: 0, csv: false }
    }
}

impl FigureParams {
    /// Parse `--scale X --reps N --threads N --limit N --csv` from args.
    pub fn from_args() -> Self {
        let mut p = Self::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    p.scale = args[i + 1].parse().expect("--scale takes a float");
                    i += 2;
                }
                "--reps" => {
                    p.reps = args[i + 1].parse().expect("--reps takes an integer");
                    i += 2;
                }
                "--threads" => {
                    p.threads = args[i + 1].parse().expect("--threads takes an integer");
                    i += 2;
                }
                "--limit" => {
                    p.limit_algos = args[i + 1].parse().expect("--limit takes an integer");
                    i += 2;
                }
                "--csv" => {
                    p.csv = true;
                    i += 1;
                }
                other => panic!("unknown argument {other}; see DESIGN.md §5"),
            }
        }
        if p.threads > 1 {
            rayon::ThreadPoolBuilder::new()
                .num_threads(p.threads)
                .build_global()
                .expect("rayon pool");
        }
        p
    }

    /// Scale an `m = n`-type dimension, rounded to a multiple of `multiple`
    /// (at least one multiple).
    pub fn dim(&self, paper: usize, multiple: usize) -> usize {
        let raw = (paper as f64 * self.scale).round() as usize;
        (raw.max(multiple) / multiple) * multiple
    }

    /// The `k` sweep for a figure: paper values scaled, floored at 64, and
    /// deduplicated.
    pub fn k_sweep(&self, paper_points: &[usize]) -> Vec<usize> {
        let mut out: Vec<usize> = paper_points
            .iter()
            .map(|&k| (((k as f64 * self.scale).round() as usize).max(64) / 8) * 8)
            .collect();
        out.dedup();
        out
    }

    /// True when the executors should use the rayon-parallel driver.
    pub fn parallel(&self) -> bool {
        self.threads > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_rounds_to_multiple() {
        let p = FigureParams { scale: 0.1, ..Default::default() };
        assert_eq!(p.dim(14400, 4) % 4, 0);
        assert_eq!(p.dim(14400, 4), 1440);
        assert_eq!(p.dim(10, 4), 4, "floors at one multiple");
    }

    #[test]
    fn k_sweep_scales_and_floors() {
        let p = FigureParams { scale: 0.1, ..Default::default() };
        let ks = p.k_sweep(&[1000, 2000, 12000]);
        assert_eq!(ks.len(), 3);
        assert!(ks.iter().all(|&k| k >= 64 && k % 8 == 0));
        let tiny = FigureParams { scale: 0.001, ..Default::default() };
        let ks = tiny.k_sweep(&[1000, 2000]);
        assert_eq!(ks, vec![64], "collapsed points deduplicate");
    }
}
