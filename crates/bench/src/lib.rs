//! Benchmark harness shared by the figure binaries and criterion benches.
//!
//! Every table and figure of the paper's evaluation section (§5) has a
//! regeneration binary in `src/bin/` (`fig2` … `fig10`); this library holds
//! the common machinery: seeded workloads, steady-state timing, effective
//! GFLOPS reporting, CLI parameter parsing, and the measured-vs-modeled
//! plumbing.
//!
//! Problem sizes default to a linear `--scale 0.1` of the paper's
//! (`m = n = 14400` becomes 1440) so a full figure regenerates in minutes
//! on one core; pass `--scale 1.0` for paper-size runs. `k`-type dimensions
//! keep their *absolute* relation to `k_c = 256` where the paper's analysis
//! depends on it (rank-k crossovers live at multiples of `K̃_L·k_c`).

pub mod figure;
pub mod params;
pub mod report;
pub mod runner;
pub mod timing;
pub mod workload;

pub use params::FigureParams;
pub use report::Report;
pub use runner::{measure_fmm, measure_gemm, Measured};
