//! Criterion micro-benchmarks for the GEMM substrate: micro-kernel,
//! and small blocked GEMM.

#![forbid(unsafe_op_in_unsafe_fn)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fmm_dense::fill;
use fmm_gemm::kernel::{self, Acc, MR, NR};
use fmm_gemm::{BlockingParams, DestTile, GemmWorkspace};
use std::time::Duration;

fn bench_microkernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("microkernel");
    g.measurement_time(Duration::from_millis(800));
    g.sample_size(20);
    for kc in [64usize, 256] {
        let a: Vec<f64> = (0..kc * MR).map(|x| x as f64 * 0.25).collect();
        let b: Vec<f64> = (0..kc * NR).map(|x| x as f64 * 0.5).collect();
        let ukr = kernel::select();
        g.throughput(Throughput::Elements((2 * MR * NR * kc) as u64));
        g.bench_with_input(BenchmarkId::new(kernel::selected_name(), kc), &kc, |bench, &kc| {
            bench.iter(|| {
                let mut acc: Acc = [0.0; MR * NR];
                // SAFETY: panels sized kc*MR / kc*NR above.
                unsafe { ukr(kc, a.as_ptr(), b.as_ptr(), &mut acc) };
                criterion::black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_small_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    let params = BlockingParams::default();
    for n in [256usize, 512] {
        let a = fill::bench_workload(n, n, 1);
        let b = fill::bench_workload(n, n, 2);
        let mut cm = fmm_dense::Matrix::zeros(n, n);
        let mut ws = GemmWorkspace::for_params(&params);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| {
                fmm_gemm::driver::gemm_sums(
                    &mut [DestTile::new(cm.as_mut(), 1.0)],
                    &[(1.0, a.as_ref())],
                    &[(1.0, b.as_ref())],
                    &params,
                    &mut ws,
                );
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_microkernel, bench_small_gemm);
criterion_main!(benches);
