//! One- and two-level FMM against blocked GEMM at a fixed, bench-friendly
//! size: the headline comparison in miniature.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fmm_core::{fmm_execute, registry, FmmContext, FmmPlan, Variant};
use fmm_dense::fill;
use fmm_gemm::{BlockingParams, DestTile, GemmWorkspace};
use std::time::Duration;

fn bench_levels(c: &mut Criterion) {
    let n = 480usize; // divisible by 4 (two-level <2,2,2>)
    let a = fill::bench_workload(n, n, 1);
    let b = fill::bench_workload(n, n, 2);
    let mut cm = fmm_dense::Matrix::zeros(n, n);
    let params = BlockingParams::default();

    let mut g = c.benchmark_group(format!("fmm_{n}cubed"));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    g.throughput(Throughput::Elements((2 * n * n * n) as u64));

    let mut ws = GemmWorkspace::for_params(&params);
    g.bench_function("gemm", |bench| {
        bench.iter(|| {
            fmm_gemm::driver::gemm_sums(
                &mut [DestTile::new(cm.as_mut(), 1.0)],
                &[(1.0, a.as_ref())],
                &[(1.0, b.as_ref())],
                &params,
                &mut ws,
            );
        })
    });

    let one = FmmPlan::new(vec![registry::strassen()]);
    let two = FmmPlan::uniform(registry::strassen(), 2);
    for (label, plan) in [("strassen_1l", &one), ("strassen_2l", &two)] {
        for variant in Variant::ALL {
            let mut ctx = FmmContext::new(params);
            g.bench_function(format!("{label}_{}", variant.name()), |bench| {
                bench.iter(|| {
                    fmm_execute(cm.as_mut(), a.as_ref(), b.as_ref(), plan, variant, &mut ctx);
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_levels);
criterion_main!(benches);
