//! Ablation benchmarks for the design choices DESIGN.md §6 calls out:
//!
//! 2. multi-destination epilogue (ABC) vs materializing `M_r` (AB) on a
//!    rank-k shape;
//! 3. hybrid vs homogeneous two-level partitions at `k = 1200`-type depth;
//! 4. model-guided top-2 selection cost vs a single measurement;
//! 5. recursive-block vs row-major flat indexing of operand blocks.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fmm_core::indexing::BlockGrid;
use fmm_core::{fmm_execute, registry, FmmContext, FmmPlan, Variant};
use fmm_dense::fill;
use fmm_gemm::BlockingParams;
use std::time::Duration;

fn ablate_epilogue(c: &mut Criterion) {
    // Rank-k shape: m = n >> k. The paper's claim: ABC wins because AB's
    // M_r buffer round-trips cost 3·nnz(W) extra C-traffic.
    let (m, k, n) = (960usize, 128usize, 960usize);
    let a = fill::bench_workload(m, k, 1);
    let b = fill::bench_workload(k, n, 2);
    let mut cm = fmm_dense::Matrix::zeros(m, n);
    let params = BlockingParams::default();
    let plan = FmmPlan::new(vec![registry::strassen()]);

    let mut g = c.benchmark_group("ablate_epilogue_rank_k");
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    g.throughput(Throughput::Elements((2 * m * k * n) as u64));
    for variant in Variant::ALL {
        let mut ctx = FmmContext::new(params);
        g.bench_function(variant.name(), |bench| {
            bench.iter(|| {
                fmm_execute(cm.as_mut(), a.as_ref(), b.as_ref(), &plan, variant, &mut ctx);
            })
        });
    }
    g.finish();
}

fn ablate_hybrid(c: &mut Criterion) {
    let reg = registry::Registry::shared();
    let a222 = reg.get((2, 2, 2)).unwrap();
    let a232 = reg.get((2, 3, 2)).unwrap();
    let (m, k, n) = (720usize, 1200usize, 720usize);
    let a = fill::bench_workload(m, k, 1);
    let b = fill::bench_workload(k, n, 2);
    let mut cm = fmm_dense::Matrix::zeros(m, n);
    let params = BlockingParams::default();

    let mut g = c.benchmark_group("ablate_hybrid_k1200");
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    g.throughput(Throughput::Elements((2 * m * k * n) as u64));
    let plans = [
        ("homogeneous_222x222", FmmPlan::from_arcs(vec![a222.clone(), a222.clone()])),
        ("hybrid_222x232", FmmPlan::from_arcs(vec![a222.clone(), a232.clone()])),
    ];
    for (label, plan) in &plans {
        let mut ctx = FmmContext::new(params);
        g.bench_function(*label, |bench| {
            bench.iter(|| {
                fmm_execute(cm.as_mut(), a.as_ref(), b.as_ref(), plan, Variant::Abc, &mut ctx);
            })
        });
    }
    g.finish();
}

fn ablate_selection(c: &mut Criterion) {
    // Cost of ranking candidates with the model — must be negligible next
    // to a single matrix multiplication.
    use fmm_model::{rank_candidates, ArchParams, Impl};
    use std::sync::Arc;
    let reg = registry::Registry::shared();
    let plans: Vec<Arc<FmmPlan>> = reg
        .paper_rows()
        .into_iter()
        .flat_map(|(_, a)| {
            [
                Arc::new(FmmPlan::from_arcs(vec![a.clone()])),
                Arc::new(FmmPlan::from_arcs(vec![a.clone(), a.clone()])),
            ]
        })
        .collect();
    let arch = ArchParams::paper_machine();
    let mut g = c.benchmark_group("ablate_selection");
    g.measurement_time(Duration::from_millis(800));
    g.sample_size(20);
    g.bench_function("rank_all_candidates", |bench| {
        bench.iter(|| rank_candidates(1440, 480, 1440, &plans, &Impl::FMM_VARIANTS, &arch, true))
    });
    g.finish();
}

fn ablate_indexing(c: &mut Criterion) {
    // Recursive-block coordinate math vs plain row-major flat indexing.
    let grid = BlockGrid::new(vec![(2, 2), (3, 2), (2, 3)]);
    let len = grid.len();
    let mut g = c.benchmark_group("ablate_indexing");
    g.measurement_time(Duration::from_millis(500));
    g.sample_size(30);
    g.throughput(Throughput::Elements(len as u64));
    g.bench_function("morton_coords", |bench| {
        bench.iter(|| {
            let mut acc = 0usize;
            for flat in 0..len {
                let (r, cc) = grid.coords(flat);
                acc += r + cc;
            }
            criterion::black_box(acc)
        })
    });
    let cols = grid.cols();
    g.bench_function("row_major_coords", |bench| {
        bench.iter(|| {
            let mut acc = 0usize;
            for flat in 0..len {
                acc += flat / cols + flat % cols;
            }
            criterion::black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, ablate_epilogue, ablate_hybrid, ablate_selection, ablate_indexing);
criterion_main!(benches);
