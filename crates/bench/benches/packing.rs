//! Packing benchmarks, including the paper's key primitive: packing a
//! *linear combination* of submatrices at (nearly) the cost of a plain
//! pack. This is ablation 1 of DESIGN.md §6 — pack-and-add vs packing and
//! adding separately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fmm_dense::{fill, Matrix};
use fmm_gemm::pack;
use std::time::Duration;

fn bench_pack_sums(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_a");
    g.measurement_time(Duration::from_millis(800));
    g.sample_size(20);
    let (mb, kb) = (96usize, 256usize);
    let mats: Vec<Matrix> = (0..4).map(|i| fill::bench_workload(mb, kb, i as u64)).collect();
    let mut dst = vec![0.0; mb * kb];
    g.throughput(Throughput::Elements((mb * kb) as u64));
    for terms in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("pack_sum_terms", terms), &terms, |bench, &t| {
            let list: Vec<(f64, fmm_dense::MatRef<'_>)> =
                mats.iter().take(t).map(|m| (1.0, m.as_ref())).collect();
            bench.iter(|| pack::pack_a_sum(&mut dst, &list, 8))
        });
    }
    // The alternative the paper replaces: materialize the sum, then pack.
    g.bench_function("add_then_pack_2_terms", |bench| {
        let mut tmp = Matrix::zeros(mb, kb);
        bench.iter(|| {
            fmm_dense::ops::linear_combination(
                tmp.as_mut(),
                &[(1.0, mats[0].as_ref()), (1.0, mats[1].as_ref())],
            )
            .unwrap();
            pack::pack_a_sum(&mut dst, &[(1.0, tmp.as_ref())], 8);
        })
    });
    g.finish();
}

fn bench_pack_b(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_b");
    g.measurement_time(Duration::from_millis(800));
    g.sample_size(20);
    let (kb, nb) = (256usize, 1024usize);
    let m0 = fill::bench_workload(kb, nb, 7);
    let m1 = fill::bench_workload(kb, nb, 8);
    let mut dst = vec![0.0; kb * nb];
    g.throughput(Throughput::Elements((kb * nb) as u64));
    g.bench_function("single", |bench| {
        bench.iter(|| pack::pack_b_sum(&mut dst, &[(1.0, m0.as_ref())], 4))
    });
    g.bench_function("sum_2", |bench| {
        bench.iter(|| pack::pack_b_sum(&mut dst, &[(1.0, m0.as_ref()), (-1.0, m1.as_ref())], 4))
    });
    g.finish();
}

criterion_group!(benches, bench_pack_sums, bench_pack_b);
criterion_main!(benches);
