//! `fmm` — families of practical fast matrix multiplication algorithms.
//!
//! This is the umbrella crate of the workspace reproducing Huang, Rice,
//! Matthews & van de Geijn, *"Generating Families of Practical Fast Matrix
//! Multiplication Algorithms"* (IPDPS 2017). It re-exports the component
//! crates and offers a batteries-included entry point, [`multiply`]: a thin
//! wrapper over a process-global [`FmmEngine`] that performs model-guided
//! algorithm selection (the paper's poly-algorithm, §4.4) once per problem
//! shape, caches the decision, and executes with pooled, preplanned
//! workspaces — repeated traffic does no plan recomposition, no re-ranking,
//! and no workspace allocation.
//!
//! Components:
//!
//! * [`dense`] — column-major matrices and strided views;
//! * [`gemm`] — the BLIS-style blocked GEMM substrate (packing with sums,
//!   multi-destination micro-kernel epilogue, rayon loop-3 parallelism,
//!   pooled packing workspaces);
//! * [`core`] — `[[U,V,W]]` algorithms, Kronecker multi-level plans,
//!   dynamic peeling, the arena-backed Naive/AB/ABC executors, and the
//!   Figure-2 registry;
//! * [`model`] — the generated performance model (Figures 4–5),
//!   selection, and the parallel-time strategy ranking;
//! * [`sched`] — the task-parallel BFS/DFS/hybrid scheduler
//!   (Benson–Ballard-style task parallelism across submultiplications);
//! * [`tune`] — host calibration, empirical autotuning, and the
//!   persistent per-machine decision store behind [`engine_tuned()`];
//! * [`engine`] — the long-lived, cached, model-routed execution engine
//!   with the batched [`multiply_batch`] entry point;
//! * [`serve`] — the multi-client TCP serving daemon: a length-prefixed
//!   binary frame protocol, a cross-request micro-batching dispatcher
//!   over [`FmmEngine::multiply_batch`], bounded-queue admission control
//!   with typed backpressure, live metrics, a client library, and the
//!   `fmm_serve` CLI;
//! * [`search`] — ALS / annealing / flip-graph discovery of new algorithms;
//! * [`gen`] — the source-code generator for specialized implementations.
//!
//! # Quickstart
//!
//! ```
//! use fmm_dense::{fill, Matrix};
//!
//! let a = fill::bench_workload(96, 64, 1);
//! let b = fill::bench_workload(64, 80, 2);
//! let mut c = Matrix::zeros(96, 80);
//! fmm::multiply(c.as_mut(), a.as_ref(), b.as_ref());
//!
//! let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
//! assert!(fmm_dense::norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-10);
//! ```
//!
//! For long-lived services, hold an [`FmmEngine`] directly (or use
//! [`engine()`]): it exposes warmup ([`FmmEngine::prepare`]), explicit
//! plan execution, and cache statistics.
//!
//! # Precision
//!
//! The execution stack is generic over `fmm_dense::Scalar`. [`multiply`]
//! serves `f64` (the paper's DGEMM experiments); [`multiply_f32`] serves
//! `f32` through its own process-global engine — dtype-specific kernels
//! (16x4 AVX2 register tile where available), per-dtype caches and
//! workspace pools, and model rankings charged at 4 bytes per element.
//! The `f32` accuracy contract is `Scalar::accuracy_bound`: within the
//! `f32`-epsilon-derived bound of an `f64`-computed reference.

pub use fmm_core as core;
pub use fmm_dense as dense;
// Module and function live in different namespaces: `fmm::engine` is the
// component crate, `fmm::engine()` the process-global instance — and
// likewise `fmm::tune` / `fmm::tune()`.
pub use fmm_engine as engine;
pub use fmm_gemm as gemm;
pub use fmm_gen as gen;
pub use fmm_model as model;
pub use fmm_sched as sched;
pub use fmm_search as search;
pub use fmm_serve as serve;
pub use fmm_tune as tune;

pub use fmm_core::Strategy;
pub use fmm_engine::{ArchSource, BatchItem, EngineConfig, EngineStats, FmmEngine, Routing};
pub use fmm_tune::{ExploreOutcome, TuneStore, Tuner};

use fmm_dense::{MatMut, MatRef};
use std::sync::{Arc, OnceLock};

/// The engine behind the free-function `f64` API: one model-routed
/// [`FmmEngine`] with default configuration, built on first use and shared
/// by the whole process. Use it directly for warmup, statistics, or
/// explicit plan execution. The `f32` traffic has its own engine
/// ([`engine_f32`]) — one process-global engine per dtype, so decision and
/// plan caches never mix element types.
pub fn engine() -> &'static FmmEngine {
    static ENGINE: OnceLock<FmmEngine> = OnceLock::new();
    ENGINE.get_or_init(FmmEngine::with_defaults)
}

/// The process-global single-precision engine behind [`multiply_f32`]:
/// same routing and caching as [`engine()`], executing over the `f32`
/// kernel stack (16x4 AVX2 register tile where available), with the
/// model's memory terms charged at 4 bytes per element.
pub fn engine_f32() -> &'static FmmEngine<f32> {
    static ENGINE: OnceLock<FmmEngine<f32>> = OnceLock::new();
    ENGINE.get_or_init(FmmEngine::<f32>::with_defaults)
}

/// `C += A·B` through the process-global [`engine()`]: model-guided
/// selection over the standard registry, with every cache layer
/// (decisions, composed plans, workspaces) shared across calls and
/// threads.
pub fn multiply(c: MatMut<'_>, a: MatRef<'_>, b: MatRef<'_>) {
    engine().multiply(c, a, b)
}

/// Single-precision `C += A·B` through the process-global [`engine_f32`].
/// Accuracy contract: the result matches an `f64`-computed reference
/// within [`fmm_dense::Scalar::accuracy_bound`] for `f32` at the plan's
/// inner dimension and level count.
pub fn multiply_f32(c: MatMut<'_, f32>, a: MatRef<'_, f32>, b: MatRef<'_, f32>) {
    engine_f32().multiply(c, a, b)
}

/// Execute many independent `C += A·B` problems through the process-global
/// [`engine()`] in one call. See [`FmmEngine::multiply_batch`]; the
/// default engine is sequential, so items run in order — build a parallel
/// [`FmmEngine`] for inter-problem parallelism.
pub fn multiply_batch(items: &mut [BatchItem<'_>]) {
    engine().multiply_batch(items)
}

/// Single-precision [`multiply_batch`], through [`engine_f32`].
pub fn multiply_batch_f32(items: &mut [BatchItem<'_, f32>]) {
    engine_f32().multiply_batch(items)
}

/// The process-global **tuned** engine: `Routing::Tuned` over the default
/// persistent [`TuneStore`] (`~/.cache/fmm/tune.json`, `FMM_TUNE_STORE`
/// override), host-calibrated arch. Shape classes previously tuned — by
/// [`tune()`], the `fmm_tune` CLI, or any `Tuner` saving to the default
/// store *before this engine is first used* — route with zero model
/// ranking; everything else falls back to model routing transparently.
pub fn engine_tuned() -> &'static FmmEngine {
    static ENGINE: OnceLock<FmmEngine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        FmmEngine::new(EngineConfig {
            routing: Routing::Tuned { store: Arc::new(TuneStore::load_default()) },
            ..EngineConfig::default()
        })
    })
}

/// Calibrate this host (cached in the tune store) and empirically tune
/// the given square problem sizes for the default sequential engine
/// configuration, persisting the winners to the default store. Returns
/// one [`ExploreOutcome`] per size. Services wanting parallel or custom
/// tuning should drive [`Tuner`] directly.
pub fn tune(sizes: &[usize]) -> Vec<ExploreOutcome> {
    let path = TuneStore::default_path();
    let mut store = TuneStore::load(&path);
    // Calibrate into *this* store snapshot (not via `host_arch`, whose
    // own persistence the save below would clobber).
    let arch = fmm_tune::ensure_calibrated::<f64>(&mut store);
    let tuner = Tuner::sequential();
    let outcomes: Vec<ExploreOutcome> =
        sizes.iter().map(|&n| tuner.explore::<f64>(&mut store, &arch, n, n, n)).collect();
    let _ = store.save(&path); // best-effort: tuning data is a cache
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_dense::{fill, norms, Matrix};

    #[test]
    fn multiply_matches_reference_on_awkward_sizes() {
        for (m, k, n) in [(37, 29, 41), (120, 120, 120), (5, 300, 5)] {
            let a = fill::bench_workload(m, k, 1);
            let b = fill::bench_workload(k, n, 2);
            let mut c = Matrix::zeros(m, n);
            multiply(c.as_mut(), a.as_ref(), b.as_ref());
            let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
            assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn parallel_engine_config_multiplies_correctly() {
        // What the removed `multiply_with { parallel: true }` shim covered,
        // on the supported surface: a parallel engine held by the caller.
        let engine = FmmEngine::new(EngineConfig { parallel: true, ..EngineConfig::default() });
        let a = fill::bench_workload(64, 48, 3);
        let b = fill::bench_workload(48, 56, 4);
        let mut c = Matrix::zeros(64, 56);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9);
    }

    #[test]
    fn multiply_batch_matches_reference() {
        let a = fill::bench_workload(37, 29, 9);
        let b = fill::bench_workload(29, 41, 10);
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        let mut cs: Vec<Matrix> = (0..4).map(|_| Matrix::zeros(37, 41)).collect();
        {
            let mut items: Vec<BatchItem<'_>> =
                cs.iter_mut().map(|c| BatchItem::new(c.as_mut(), a.as_ref(), b.as_ref())).collect();
            multiply_batch(&mut items);
        }
        for c in &cs {
            assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9);
        }
    }

    #[test]
    fn tune_then_engine_tuned_serves_the_stored_class() {
        // Point the default store at a private temp file before anything
        // resolves it: the test must neither read decisions from nor
        // write debug-measured ones into the developer's real
        // ~/.cache/fmm/tune.json. (Sibling tests that race this only
        // resolve calibration, which is harmless at either path.)
        let store_path = std::env::temp_dir()
            .join(format!("fmm-facade-tune-{}", std::process::id()))
            .join("tune.json");
        std::env::set_var(fmm_tune::store::STORE_ENV, &store_path);

        // Tune a small square (persists to the store), then serve its
        // shape class through the process-global tuned engine. This test
        // is the only user of `engine_tuned()` in this binary, so the
        // tune() -> first-use ordering below is what a service would do.
        let outcomes = tune(&[48]);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].winner_gflops > 0.0);

        let a = fill::bench_workload(48, 48, 11);
        let b = fill::bench_workload(48, 48, 12);
        let mut c = Matrix::zeros(48, 48);
        engine_tuned().multiply(c.as_mut(), a.as_ref(), b.as_ref());
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9);

        let stats = engine_tuned().stats();
        assert_eq!(stats.tuned_hits, 1, "the tuned class routed from the store");
        assert_eq!(stats.rankings, 0, "no model ranking for a stored class");

        std::fs::remove_dir_all(store_path.parent().unwrap()).ok();
    }

    #[test]
    fn multiply_accumulates() {
        let a = Matrix::identity(8);
        let b = Matrix::filled(8, 8, 2.0);
        let mut c = Matrix::filled(8, 8, 1.0);
        multiply(c.as_mut(), a.as_ref(), b.as_ref());
        assert_eq!(c, Matrix::filled(8, 8, 3.0));
    }

    #[test]
    fn global_engine_is_shared_and_caches_decisions() {
        let a = fill::bench_workload(40, 24, 1);
        let b = fill::bench_workload(24, 32, 2);
        let before = engine().stats();
        for _ in 0..3 {
            let mut c = Matrix::zeros(40, 32);
            multiply(c.as_mut(), a.as_ref(), b.as_ref());
        }
        let after = engine().stats();
        // >=, not ==: sibling tests share the process-global engine and may
        // run between the two snapshots.
        assert!(after.executions >= before.executions + 3);
        // The shape is ranked at most once process-wide; at least the last
        // two calls must be decision-cache hits.
        assert!(after.decision_hits >= before.decision_hits + 2);
    }
}
