//! `fmm` — families of practical fast matrix multiplication algorithms.
//!
//! This is the umbrella crate of the workspace reproducing Huang, Rice,
//! Matthews & van de Geijn, *"Generating Families of Practical Fast Matrix
//! Multiplication Algorithms"* (IPDPS 2017). It re-exports the component
//! crates and offers a batteries-included entry point, [`multiply`], that
//! performs model-guided algorithm selection (the paper's poly-algorithm,
//! §4.4) before executing.
//!
//! Components:
//!
//! * [`dense`] — column-major matrices and strided views;
//! * [`gemm`] — the BLIS-style blocked GEMM substrate (packing with sums,
//!   multi-destination micro-kernel epilogue, rayon loop-3 parallelism);
//! * [`core`] — `[[U,V,W]]` algorithms, Kronecker multi-level plans,
//!   dynamic peeling, the Naive/AB/ABC executors, and the Figure-2 registry;
//! * [`model`] — the generated performance model (Figures 4–5) and
//!   selection;
//! * [`search`] — ALS / annealing / flip-graph discovery of new algorithms;
//! * [`gen`] — the source-code generator for specialized implementations.
//!
//! # Quickstart
//!
//! ```
//! use fmm_dense::{fill, Matrix};
//!
//! let a = fill::bench_workload(96, 64, 1);
//! let b = fill::bench_workload(64, 80, 2);
//! let mut c = Matrix::zeros(96, 80);
//! fmm::multiply(c.as_mut(), a.as_ref(), b.as_ref());
//!
//! let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
//! assert!(fmm_dense::norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-10);
//! ```

pub use fmm_core as core;
pub use fmm_dense as dense;
pub use fmm_gemm as gemm;
pub use fmm_gen as gen;
pub use fmm_model as model;
pub use fmm_search as search;

use fmm_core::{fmm_execute, fmm_execute_parallel, FmmContext, FmmPlan};
use fmm_dense::{MatMut, MatRef};
use fmm_model::{rank_candidates, ArchParams, Impl};
use std::sync::Arc;

/// Options for the high-level [`multiply_with`] entry point.
#[derive(Clone, Debug)]
pub struct MultiplyOptions {
    /// Architecture parameters for model-guided selection.
    pub arch: ArchParams,
    /// Use the rayon-parallel executors.
    pub parallel: bool,
    /// Maximum plan levels considered (1 or 2 are practical).
    pub max_levels: usize,
}

impl Default for MultiplyOptions {
    fn default() -> Self {
        Self { arch: ArchParams::paper_machine(), parallel: false, max_levels: 2 }
    }
}

/// `C += A·B` with model-guided selection over the standard registry
/// (default options).
pub fn multiply(c: MatMut<'_>, a: MatRef<'_>, b: MatRef<'_>) {
    multiply_with(c, a, b, &MultiplyOptions::default())
}

/// `C += A·B` with model-guided selection (the paper's poly-algorithm):
/// rank every `(plan, variant)` candidate plus plain GEMM with the
/// performance model and execute the best prediction.
///
/// For production use cases that re-multiply the same shape many times,
/// follow the paper's full §4.4 protocol instead: take the top-2 via
/// [`fmm_model::select::top_two`], measure both once, and cache the winner.
pub fn multiply_with(c: MatMut<'_>, a: MatRef<'_>, b: MatRef<'_>, opts: &MultiplyOptions) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    let reg = fmm_core::registry::Registry::shared();
    let mut plans: Vec<Arc<FmmPlan>> = Vec::new();
    for (_, algo) in reg.paper_rows() {
        plans.push(Arc::new(FmmPlan::from_arcs(vec![algo.clone()])));
        if opts.max_levels >= 2 {
            plans.push(Arc::new(FmmPlan::from_arcs(vec![algo.clone(), algo.clone()])));
        }
    }
    let ranked = rank_candidates(m, k, n, &plans, &Impl::FMM_VARIANTS, &opts.arch, true);
    let best = &ranked[0];
    match (&best.plan, best.impl_.to_variant()) {
        (Some(plan), Some(variant)) => {
            let mut ctx = FmmContext::with_defaults();
            if opts.parallel {
                fmm_execute_parallel(c, a, b, plan, variant, &mut ctx);
            } else {
                fmm_execute(c, a, b, plan, variant, &mut ctx);
            }
        }
        _ => {
            if opts.parallel {
                fmm_gemm::gemm_parallel(c, a, b);
            } else {
                fmm_gemm::gemm(c, a, b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_dense::{fill, norms, Matrix};

    #[test]
    fn multiply_matches_reference_on_awkward_sizes() {
        for (m, k, n) in [(37, 29, 41), (120, 120, 120), (5, 300, 5)] {
            let a = fill::bench_workload(m, k, 1);
            let b = fill::bench_workload(k, n, 2);
            let mut c = Matrix::zeros(m, n);
            multiply(c.as_mut(), a.as_ref(), b.as_ref());
            let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
            assert!(
                norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9,
                "m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn multiply_parallel_option() {
        let opts = MultiplyOptions { parallel: true, ..Default::default() };
        let a = fill::bench_workload(64, 48, 3);
        let b = fill::bench_workload(48, 56, 4);
        let mut c = Matrix::zeros(64, 56);
        multiply_with(c.as_mut(), a.as_ref(), b.as_ref(), &opts);
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9);
    }

    #[test]
    fn multiply_accumulates() {
        let a = Matrix::identity(8);
        let b = Matrix::filled(8, 8, 2.0);
        let mut c = Matrix::filled(8, 8, 1.0);
        multiply(c.as_mut(), a.as_ref(), b.as_ref());
        assert_eq!(c, Matrix::filled(8, 8, 3.0));
    }
}
