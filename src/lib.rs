//! `fmm` — families of practical fast matrix multiplication algorithms.
//!
//! This is the umbrella crate of the workspace reproducing Huang, Rice,
//! Matthews & van de Geijn, *"Generating Families of Practical Fast Matrix
//! Multiplication Algorithms"* (IPDPS 2017). It re-exports the component
//! crates and offers a batteries-included entry point, [`multiply`]: a thin
//! wrapper over a process-global [`FmmEngine`] that performs model-guided
//! algorithm selection (the paper's poly-algorithm, §4.4) once per problem
//! shape, caches the decision, and executes with pooled, preplanned
//! workspaces — repeated traffic does no plan recomposition, no re-ranking,
//! and no workspace allocation.
//!
//! Components:
//!
//! * [`dense`] — column-major matrices and strided views;
//! * [`gemm`] — the BLIS-style blocked GEMM substrate (packing with sums,
//!   multi-destination micro-kernel epilogue, rayon loop-3 parallelism,
//!   pooled packing workspaces);
//! * [`core`] — `[[U,V,W]]` algorithms, Kronecker multi-level plans,
//!   dynamic peeling, the arena-backed Naive/AB/ABC executors, and the
//!   Figure-2 registry;
//! * [`model`] — the generated performance model (Figures 4–5) and
//!   selection;
//! * [`engine`] — the long-lived, cached, model-routed execution engine;
//! * [`search`] — ALS / annealing / flip-graph discovery of new algorithms;
//! * [`gen`] — the source-code generator for specialized implementations.
//!
//! # Quickstart
//!
//! ```
//! use fmm_dense::{fill, Matrix};
//!
//! let a = fill::bench_workload(96, 64, 1);
//! let b = fill::bench_workload(64, 80, 2);
//! let mut c = Matrix::zeros(96, 80);
//! fmm::multiply(c.as_mut(), a.as_ref(), b.as_ref());
//!
//! let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
//! assert!(fmm_dense::norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-10);
//! ```
//!
//! For long-lived services, hold an [`FmmEngine`] directly (or use
//! [`engine()`]): it exposes warmup ([`FmmEngine::prepare`]), explicit
//! plan execution, and cache statistics.

pub use fmm_core as core;
pub use fmm_dense as dense;
// Module and function live in different namespaces: `fmm::engine` is the
// component crate, `fmm::engine()` the process-global instance.
pub use fmm_engine as engine;
pub use fmm_gemm as gemm;
pub use fmm_gen as gen;
pub use fmm_model as model;
pub use fmm_search as search;

pub use fmm_engine::{EngineConfig, EngineStats, FmmEngine, Routing};

use fmm_dense::{MatMut, MatRef};
use fmm_model::ArchParams;
use std::sync::OnceLock;

/// The engine behind the free-function API: one model-routed
/// [`FmmEngine`] with default configuration, built on first use and shared
/// by the whole process. Use it directly for warmup, statistics, or
/// explicit plan execution.
pub fn engine() -> &'static FmmEngine {
    static ENGINE: OnceLock<FmmEngine> = OnceLock::new();
    ENGINE.get_or_init(FmmEngine::with_defaults)
}

/// `C += A·B` through the process-global [`engine()`]: model-guided
/// selection over the standard registry, with every cache layer
/// (decisions, composed plans, workspaces) shared across calls and
/// threads.
pub fn multiply(c: MatMut<'_>, a: MatRef<'_>, b: MatRef<'_>) {
    engine().multiply(c, a, b)
}

/// Options for the deprecated [`multiply_with`] entry point.
#[derive(Clone, Debug)]
pub struct MultiplyOptions {
    /// Architecture parameters for model-guided selection.
    pub arch: ArchParams,
    /// Use the rayon-parallel executors.
    pub parallel: bool,
    /// Maximum plan levels considered (1 or 2 are practical).
    pub max_levels: usize,
}

impl Default for MultiplyOptions {
    fn default() -> Self {
        Self { arch: ArchParams::paper_machine(), parallel: false, max_levels: 2 }
    }
}

impl MultiplyOptions {
    /// The equivalent engine configuration.
    pub fn to_engine_config(&self) -> EngineConfig {
        EngineConfig {
            arch: self.arch,
            parallel: self.parallel,
            max_levels: self.max_levels,
            ..EngineConfig::default()
        }
    }
}

/// `C += A·B` with one-off options.
///
/// Deprecated: this constructs a throwaway engine per call, repeating plan
/// composition and ranking every time. Build an [`FmmEngine`] with the
/// equivalent [`EngineConfig`] once and call
/// [`FmmEngine::multiply`] instead (or use [`multiply`] for the shared
/// default engine).
#[deprecated(since = "0.1.0", note = "hold an FmmEngine (see MultiplyOptions::to_engine_config)")]
pub fn multiply_with(c: MatMut<'_>, a: MatRef<'_>, b: MatRef<'_>, opts: &MultiplyOptions) {
    FmmEngine::new(opts.to_engine_config()).multiply(c, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_dense::{fill, norms, Matrix};

    #[test]
    fn multiply_matches_reference_on_awkward_sizes() {
        for (m, k, n) in [(37, 29, 41), (120, 120, 120), (5, 300, 5)] {
            let a = fill::bench_workload(m, k, 1);
            let b = fill::bench_workload(k, n, 2);
            let mut c = Matrix::zeros(m, n);
            multiply(c.as_mut(), a.as_ref(), b.as_ref());
            let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
            assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9, "m={m} k={k} n={n}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn multiply_parallel_option() {
        let opts = MultiplyOptions { parallel: true, ..Default::default() };
        let a = fill::bench_workload(64, 48, 3);
        let b = fill::bench_workload(48, 56, 4);
        let mut c = Matrix::zeros(64, 56);
        multiply_with(c.as_mut(), a.as_ref(), b.as_ref(), &opts);
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9);
    }

    #[test]
    fn multiply_accumulates() {
        let a = Matrix::identity(8);
        let b = Matrix::filled(8, 8, 2.0);
        let mut c = Matrix::filled(8, 8, 1.0);
        multiply(c.as_mut(), a.as_ref(), b.as_ref());
        assert_eq!(c, Matrix::filled(8, 8, 3.0));
    }

    #[test]
    fn global_engine_is_shared_and_caches_decisions() {
        let a = fill::bench_workload(40, 24, 1);
        let b = fill::bench_workload(24, 32, 2);
        let before = engine().stats();
        for _ in 0..3 {
            let mut c = Matrix::zeros(40, 32);
            multiply(c.as_mut(), a.as_ref(), b.as_ref());
        }
        let after = engine().stats();
        // >=, not ==: sibling tests share the process-global engine and may
        // run between the two snapshots.
        assert!(after.executions >= before.executions + 3);
        // The shape is ranked at most once process-wide; at least the last
        // two calls must be decision-cache hits.
        assert!(after.decision_hits >= before.decision_hits + 2);
    }
}
