//! Cross-crate integration of the performance model and the search
//! pipeline with the core library.

use fmm_core::counts::PlanCounts;
use fmm_core::prelude::*;
use fmm_core::registry::Registry;
use fmm_model::{predict_fmm, predict_gemm, ArchParams, Impl};
use std::sync::Arc;

#[test]
fn model_predictions_are_finite_and_positive_for_all_registry_plans() {
    let reg = Registry::shared();
    let arch = ArchParams::paper_machine();
    for (_, algo) in reg.paper_rows() {
        for levels in 1..=2usize {
            let plan = FmmPlan::from_arcs(vec![algo.clone(); levels]);
            let counts = PlanCounts::of(&plan);
            for impl_ in Impl::FMM_VARIANTS {
                for (m, k, n) in [(1440, 480, 1440), (2880, 2880, 2880), (144, 1024, 144)] {
                    let p = predict_fmm(impl_, &counts, m, k, n, &arch);
                    assert!(p.total.is_finite() && p.total > 0.0);
                    assert!(p.effective_gflops > 0.0);
                    assert!(
                        p.effective_gflops < 4.0 * arch.peak_gflops(),
                        "{} {} {levels}L at {m}x{k}x{n}: absurd rate {}",
                        algo.name(),
                        impl_.name(),
                        p.effective_gflops
                    );
                }
            }
        }
    }
}

#[test]
fn model_credits_fmm_above_peak_only_for_fast_algorithms() {
    // Effective GFLOPS above machine peak is the signature of genuine
    // multiplication savings — classical algorithms can never exceed peak.
    let arch = ArchParams::paper_machine();
    let classical = fmm_core::compose::classical(2, 2, 2);
    let plan = FmmPlan::new(vec![classical]);
    let counts = PlanCounts::of(&plan);
    let p = predict_fmm(Impl::Abc, &counts, 14400, 14400, 14400, &arch);
    assert!(p.effective_gflops <= arch.peak_gflops() * 1.0001);

    let strassen_plan = FmmPlan::new(vec![fmm_core::registry::strassen()]);
    let s = predict_fmm(Impl::Abc, &PlanCounts::of(&strassen_plan), 14400, 14400, 14400, &arch);
    assert!(s.effective_gflops > arch.peak_gflops(), "Strassen must beat peak at scale");
}

#[test]
fn selection_is_consistent_with_pairwise_predictions() {
    let reg = Registry::shared();
    let arch = ArchParams::paper_machine();
    let plans: Vec<Arc<FmmPlan>> =
        reg.paper_rows().into_iter().map(|(_, a)| Arc::new(FmmPlan::from_arcs(vec![a]))).collect();
    let ranked =
        fmm_model::rank_candidates(2880, 480, 2880, &plans, &Impl::FMM_VARIANTS, &arch, true);
    // The reported ranking must equal sorting by the prediction totals.
    for pair in ranked.windows(2) {
        assert!(pair[0].prediction.total <= pair[1].prediction.total);
    }
    // And GEMM must be somewhere in the list exactly once.
    assert_eq!(ranked.iter().filter(|c| c.impl_ == Impl::Gemm).count(), 1);
}

#[test]
fn calibration_fit_roundtrips_through_the_gemm_model() {
    use fmm_gemm::BlockingParams;
    let params = BlockingParams::default();
    let truth = ArchParams { lambda: 0.66, ..ArchParams::paper_machine() };
    let shape = (4000, 256, 4000);
    let meas = fmm_model::calibrate::Measurements {
        compute_gflops: truth.peak_gflops(),
        bandwidth_gbs: 8.0 / truth.tau_b / 1e9,
        reference_gemm: (
            shape.0,
            shape.1,
            shape.2,
            predict_gemm(shape.0, shape.1, shape.2, &truth).total,
        ),
    };
    let fitted = fmm_model::calibrate::fit(&meas, &params);
    let err = (predict_gemm(shape.0, shape.1, shape.2, &fitted).total
        - predict_gemm(shape.0, shape.1, shape.2, &truth).total)
        .abs();
    assert!(err < 1e-4 * predict_gemm(shape.0, shape.1, shape.2, &truth).total);
}

#[test]
fn search_repair_recovers_every_paper_algorithm_from_uv() {
    // For each registry algorithm: discard W entirely, re-solve it exactly
    // from (U, V), and verify the result. Demonstrates the exact linear
    // repair path on every coefficient structure we ship.
    let reg = Registry::shared();
    for (entry, algo) in reg.paper_rows() {
        let broken = fmm_core::FmmAlgorithm::new_unchecked(
            "wiped",
            algo.dims(),
            algo.u().clone(),
            algo.v().clone(),
            fmm_core::CoeffMatrix::zeros(algo.w().rows(), algo.w().cols()),
        );
        let repaired = fmm_search::repair::repair_w_default(&broken)
            .unwrap_or_else(|| panic!("repair failed for {:?}", entry.dims));
        assert_eq!(repaired.rank(), algo.rank());
        assert_eq!(repaired.dims(), algo.dims());
    }
}

#[test]
fn discovered_algorithm_roundtrips_into_a_working_plan() {
    // Discover (rank 8 is fast and deterministic enough), then execute the
    // discovered algorithm on a real multiplication.
    let mut cfg = fmm_search::anneal::AnnealConfig::new((2, 2, 2), 8);
    cfg.budget = std::time::Duration::from_secs(90); // debug builds are ~20x slower
    cfg.restarts = 50;
    let algo = fmm_search::anneal::anneal(&cfg).algorithm.expect("rank 8 is easy");
    let plan = FmmPlan::new(vec![algo]);
    let a = fmm_dense::fill::bench_workload(20, 18, 1);
    let b = fmm_dense::fill::bench_workload(18, 22, 2);
    let mut c = fmm_dense::Matrix::zeros(20, 22);
    let mut ctx = FmmContext::with_defaults();
    fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Abc, &mut ctx);
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    assert!(fmm_dense::norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < 1e-10);
}
