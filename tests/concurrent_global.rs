//! Concurrency acceptance for the process-global engines: many threads
//! hammering `fmm::multiply` / `fmm::multiply_batch` (and the `f32`
//! twins) at once must (a) match the blocked-GEMM reference on every
//! result and (b) leave the shared `EngineStats` coherent — every call
//! accounted for, no counter lost to a race.
//!
//! Each dtype gets its own `#[test]` and its own process-global engine
//! (`fmm::engine()` / `fmm::engine_f32()`), so within this binary the
//! deltas asserted below are exact, not lower bounds.

use fmm_dense::{fill, norms, Matrix, Scalar};
use fmm_engine::BatchItem;
use std::thread;

const THREADS: usize = 8;
/// Per thread: this many single multiplies plus one batch of
/// [`BATCH_ITEMS`].
const SINGLE_CALLS: usize = 3;
const BATCH_ITEMS: usize = 4;

#[test]
fn f64_global_engine_survives_concurrent_hammering_with_coherent_stats() {
    let before = fmm::engine().stats();

    thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                // A thread-private shape (decision-cache growth under
                // contention) and a shape every thread shares (hit-path
                // contention on one LRU entry).
                let shapes = [(24 + t, 17 + t, 31 + t), (48, 32, 40), (24 + t, 17 + t, 31 + t)];
                for (i, &(m, k, n)) in shapes.iter().take(SINGLE_CALLS).enumerate() {
                    let a = fill::bench_workload(m, k, (10 * t + i) as u64 + 1);
                    let b = fill::bench_workload(k, n, (10 * t + i) as u64 + 2);
                    let mut c = Matrix::zeros(m, n);
                    fmm::multiply(c.as_mut(), a.as_ref(), b.as_ref());
                    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
                    assert!(
                        norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9,
                        "thread {t} shape {m}x{k}x{n} diverged under concurrency"
                    );
                }

                let a = fill::bench_workload(37, 29, 100 + t as u64);
                let b = fill::bench_workload(29, 41, 200 + t as u64);
                let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
                let mut cs: Vec<Matrix> = (0..BATCH_ITEMS).map(|_| Matrix::zeros(37, 41)).collect();
                {
                    let mut items: Vec<BatchItem<'_>> = cs
                        .iter_mut()
                        .map(|c| BatchItem::new(c.as_mut(), a.as_ref(), b.as_ref()))
                        .collect();
                    fmm::multiply_batch(&mut items);
                }
                for c in &cs {
                    assert!(
                        norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9,
                        "thread {t} batch item diverged under concurrency"
                    );
                }
            });
        }
    });

    let after = fmm::engine().stats();
    let calls = (THREADS * (SINGLE_CALLS + BATCH_ITEMS)) as u64;
    assert_eq!(after.executions - before.executions, calls, "every call counted exactly once");
    assert_eq!(after.batches - before.batches, THREADS as u64);
    assert_eq!(after.batch_items - before.batch_items, (THREADS * BATCH_ITEMS) as u64);
    // Every execution resolves exactly one routing decision; hits and
    // misses must partition them even under cache contention.
    assert_eq!(
        (after.decision_hits - before.decision_hits)
            + (after.decision_misses - before.decision_misses),
        calls,
        "decision lookups partition executions"
    );
    // Ranking only ever happens on a miss (threads may race the same cold
    // shape, so equality with distinct-shape count is not guaranteed).
    assert!(after.rankings - before.rankings <= after.decision_misses - before.decision_misses);
}

#[test]
fn f32_global_engine_survives_concurrent_hammering_with_coherent_stats() {
    let before = fmm::engine_f32().stats();

    thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..SINGLE_CALLS {
                    let (m, k, n) = (20 + t, 26, 22 + t);
                    let a = fill::bench_workload_t::<f32>(m, k, (10 * t + i) as u64 + 1);
                    let b = fill::bench_workload_t::<f32>(k, n, (10 * t + i) as u64 + 2);
                    let mut c = Matrix::<f32>::zeros(m, n);
                    fmm::multiply_f32(c.as_mut(), a.as_ref(), b.as_ref());
                    let c_ref = fmm_gemm::reference::matmul(
                        a.cast::<f64>().as_ref(),
                        b.cast::<f64>().as_ref(),
                    );
                    let err = norms::rel_error(c.cast::<f64>().as_ref(), c_ref.as_ref());
                    let bound = <f32 as Scalar>::accuracy_bound(k, 2);
                    assert!(err < bound, "thread {t}: f32 err {err} exceeds {bound}");
                }

                let a = fill::bench_workload_t::<f32>(33, 28, 300 + t as u64);
                let b = fill::bench_workload_t::<f32>(28, 35, 400 + t as u64);
                let c_ref =
                    fmm_gemm::reference::matmul(a.cast::<f64>().as_ref(), b.cast::<f64>().as_ref());
                let bound = <f32 as Scalar>::accuracy_bound(28, 2);
                let mut cs: Vec<Matrix<f32>> =
                    (0..BATCH_ITEMS).map(|_| Matrix::<f32>::zeros(33, 35)).collect();
                {
                    let mut items: Vec<BatchItem<'_, f32>> = cs
                        .iter_mut()
                        .map(|c| BatchItem::new(c.as_mut(), a.as_ref(), b.as_ref()))
                        .collect();
                    fmm::multiply_batch_f32(&mut items);
                }
                for c in &cs {
                    let err = norms::rel_error(c.cast::<f64>().as_ref(), c_ref.as_ref());
                    assert!(err < bound, "thread {t}: f32 batch err {err} exceeds {bound}");
                }
            });
        }
    });

    let after = fmm::engine_f32().stats();
    let calls = (THREADS * (SINGLE_CALLS + BATCH_ITEMS)) as u64;
    assert_eq!(after.executions - before.executions, calls);
    assert_eq!(after.batches - before.batches, THREADS as u64);
    assert_eq!(after.batch_items - before.batch_items, (THREADS * BATCH_ITEMS) as u64);
    assert_eq!(
        (after.decision_hits - before.decision_hits)
            + (after.decision_misses - before.decision_misses),
        calls,
    );
}
