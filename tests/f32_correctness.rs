//! Acceptance tests for the single-precision path: `fmm::multiply_f32`
//! against an `f64`-computed reference, on square and awkward sizes, held
//! to the `Scalar`-derived accuracy bound.

use fmm_dense::{fill, norms, Matrix, Scalar};

/// The default engine considers up to 2 plan levels; the bound is monotone
/// in levels, so charging every shape at the maximum is safe and simple.
const MAX_LEVELS: usize = 2;

#[test]
fn multiply_f32_matches_f64_reference_on_awkward_sizes() {
    for (m, k, n) in [(37, 29, 41), (5, 300, 5), (96, 64, 80)] {
        let a = fill::bench_workload_t::<f32>(m, k, 1);
        let b = fill::bench_workload_t::<f32>(k, n, 2);
        let mut c = Matrix::<f32>::zeros(m, n);
        fmm::multiply_f32(c.as_mut(), a.as_ref(), b.as_ref());

        let c_ref =
            fmm::gemm::reference::matmul(a.cast::<f64>().as_ref(), b.cast::<f64>().as_ref());
        let err = norms::rel_error(c.cast::<f64>().as_ref(), c_ref.as_ref());
        let bound = <f32 as Scalar>::accuracy_bound(k, MAX_LEVELS);
        assert!(err < bound, "m={m} k={k} n={n}: err={err} bound={bound}");
    }
}

#[test]
fn multiply_f32_matches_f64_engine_at_512() {
    let n = 512;
    let a = fill::bench_workload_t::<f32>(n, n, 3);
    let b = fill::bench_workload_t::<f32>(n, n, 4);
    let mut c = Matrix::<f32>::zeros(n, n);
    fmm::multiply_f32(c.as_mut(), a.as_ref(), b.as_ref());

    // The f64 engine is the oracle here: its own error (~1e-13 relative)
    // is far below the f32 acceptance bound, and it is much faster than
    // the naive triple loop at this size.
    let a64 = a.cast::<f64>();
    let b64 = b.cast::<f64>();
    let mut c64 = Matrix::<f64>::zeros(n, n);
    fmm::multiply(c64.as_mut(), a64.as_ref(), b64.as_ref());

    let err = norms::rel_error(c.cast::<f64>().as_ref(), c64.as_ref());
    let bound = <f32 as Scalar>::accuracy_bound(n, MAX_LEVELS);
    assert!(err < bound, "512^3: err={err} bound={bound}");
}

#[test]
fn multiply_f32_accumulates() {
    let a = Matrix::<f32>::identity(8);
    let b = Matrix::<f32>::filled(8, 8, 2.0);
    let mut c = Matrix::<f32>::filled(8, 8, 1.0);
    fmm::multiply_f32(c.as_mut(), a.as_ref(), b.as_ref());
    assert_eq!(c, Matrix::<f32>::filled(8, 8, 3.0));
}

#[test]
fn multiply_batch_f32_matches_reference() {
    let a = fill::bench_workload_t::<f32>(37, 29, 9);
    let b = fill::bench_workload_t::<f32>(29, 41, 10);
    let c_ref = fmm::gemm::reference::matmul(a.cast::<f64>().as_ref(), b.cast::<f64>().as_ref());
    let mut cs: Vec<Matrix<f32>> = (0..4).map(|_| Matrix::zeros(37, 41)).collect();
    {
        let mut items: Vec<fmm::BatchItem<'_, f32>> = cs
            .iter_mut()
            .map(|c| fmm::BatchItem::new(c.as_mut(), a.as_ref(), b.as_ref()))
            .collect();
        fmm::multiply_batch_f32(&mut items);
    }
    let bound = <f32 as Scalar>::accuracy_bound(29, MAX_LEVELS);
    for c in &cs {
        assert!(norms::rel_error(c.cast::<f64>().as_ref(), c_ref.as_ref()) < bound);
    }
}

#[test]
fn global_f32_engine_is_independent_of_f64_engine() {
    let a = fill::bench_workload_t::<f32>(32, 32, 5);
    let b = fill::bench_workload_t::<f32>(32, 32, 6);
    let mut c = Matrix::<f32>::zeros(32, 32);
    let before = fmm::engine_f32().stats();
    fmm::multiply_f32(c.as_mut(), a.as_ref(), b.as_ref());
    let after = fmm::engine_f32().stats();
    assert!(after.executions > before.executions);
    // The f64 engine's model is charged 8 bytes/element, the f32 engine 4.
    assert_eq!(fmm::engine().arch().elem_bytes, 8);
    assert_eq!(fmm::engine_f32().arch().elem_bytes, 4);
}
