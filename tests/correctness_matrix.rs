//! The load-bearing correctness sweep: every registry algorithm, every
//! executor variant, one- and two-level plans, divisible and fringed
//! problem sizes — all compared against the reference triple loop.

use fmm_core::prelude::*;
use fmm_core::registry::Registry;
use fmm_dense::{fill, norms, Matrix};
use fmm_gemm::BlockingParams;

fn check(plan: &FmmPlan, variant: Variant, m: usize, k: usize, n: usize) {
    let a = fill::bench_workload(m, k, 0xC0FFEE);
    let b = fill::bench_workload(k, n, 0xBEEF);
    let mut c = fill::bench_workload(m, n, 0xF00D);
    let mut c_ref = c.clone();
    let mut ctx = FmmContext::new(BlockingParams::tiny());
    fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), plan, variant, &mut ctx);
    fmm_gemm::reference::matmul_into(c_ref.as_mut(), a.as_ref(), b.as_ref());
    let err = norms::max_abs_diff(c.as_ref(), c_ref.as_ref());
    let tol = norms::fmm_tolerance(k, plan.num_levels());
    assert!(
        err < tol,
        "{} {} m={m} k={k} n={n}: err={err:.3e} tol={tol:.3e}",
        plan.describe(),
        variant.name()
    );
}

#[test]
fn every_registry_algorithm_every_variant_divisible_sizes() {
    let reg = Registry::standard();
    for (entry, algo) in reg.paper_rows() {
        let (mt, kt, nt) = entry.dims;
        let plan = FmmPlan::from_arcs(vec![algo]);
        // Smallest interesting multiple of the partition dims, plus slack.
        let (m, k, n) = (mt * 10, kt * 9, nt * 11);
        for variant in Variant::ALL {
            check(&plan, variant, m, k, n);
        }
    }
}

#[test]
fn every_registry_algorithm_abc_with_fringes() {
    let reg = Registry::standard();
    for (entry, algo) in reg.paper_rows() {
        let (mt, kt, nt) = entry.dims;
        let plan = FmmPlan::from_arcs(vec![algo]);
        // One more than a multiple in every dimension: worst-case peeling.
        check(&plan, Variant::Abc, mt * 8 + 1, kt * 8 + 1, nt * 8 + 1);
    }
}

#[test]
fn two_level_homogeneous_plans_sample() {
    let reg = Registry::standard();
    for dims in [(2, 2, 2), (2, 3, 2), (3, 3, 3), (4, 2, 2)] {
        let algo = reg.get(dims).unwrap();
        let plan = FmmPlan::from_arcs(vec![algo.clone(), algo]);
        let (mt, kt, nt) = plan.partition_dims();
        for variant in Variant::ALL {
            check(&plan, variant, mt * 4, kt * 4, nt * 4);
            check(&plan, variant, mt * 4 + 3, kt * 4 + 1, nt * 4 + 2);
        }
    }
}

#[test]
fn hybrid_two_level_plans() {
    let reg = Registry::standard();
    let a222 = reg.get((2, 2, 2)).unwrap();
    let a232 = reg.get((2, 3, 2)).unwrap();
    let a333 = reg.get((3, 3, 3)).unwrap();
    for pair in [
        vec![a222.clone(), a232.clone()],
        vec![a232.clone(), a222.clone()],
        vec![a222.clone(), a333.clone()],
        vec![a333.clone(), a232.clone()],
    ] {
        let plan = FmmPlan::from_arcs(pair);
        let (mt, kt, nt) = plan.partition_dims();
        check(&plan, Variant::Abc, mt * 3, kt * 3, nt * 3);
        check(&plan, Variant::Ab, mt * 3 + 1, kt * 3 + 2, nt * 3 + 1);
    }
}

#[test]
fn three_level_strassen() {
    let plan = FmmPlan::uniform(fmm_core::registry::strassen(), 3);
    for variant in Variant::ALL {
        check(&plan, variant, 32, 32, 32);
    }
    check(&plan, Variant::Abc, 37, 41, 33);
}

#[test]
fn winograd_variant_executes() {
    let plan = FmmPlan::new(vec![fmm_core::registry::winograd()]);
    for variant in Variant::ALL {
        check(&plan, variant, 22, 26, 18);
    }
}

#[test]
fn identity_and_zero_special_cases() {
    let plan = FmmPlan::new(vec![fmm_core::registry::strassen()]);
    let mut ctx = FmmContext::new(BlockingParams::tiny());
    // A = I: C += B.
    let id = Matrix::identity(16);
    let b = fill::bench_workload(16, 16, 5);
    let mut c = Matrix::zeros(16, 16);
    fmm_execute(c.as_mut(), id.as_ref(), b.as_ref(), &plan, Variant::Abc, &mut ctx);
    assert!(norms::max_abs_diff(c.as_ref(), b.as_ref()) < 1e-12);
    // B = 0: C unchanged.
    let zero = Matrix::zeros(16, 16);
    let mut c2 = fill::bench_workload(16, 16, 6);
    let c2_before = c2.clone();
    fmm_execute(c2.as_mut(), b.as_ref(), zero.as_ref(), &plan, Variant::Ab, &mut ctx);
    assert!(norms::max_abs_diff(c2.as_ref(), c2_before.as_ref()) < 1e-12);
}

#[test]
fn exact_integer_inputs_give_exact_results_for_strassen() {
    // Integer entries keep all Strassen intermediates exactly representable:
    // the FMM result must equal the reference bit for bit.
    let (m, k, n) = (16, 16, 16);
    let a = fill::random_small_int(m, k, 1);
    let b = fill::random_small_int(k, n, 2);
    let mut c = Matrix::zeros(m, n);
    let plan = FmmPlan::new(vec![fmm_core::registry::strassen()]);
    let mut ctx = FmmContext::new(BlockingParams::tiny());
    fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Abc, &mut ctx);
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    assert_eq!(c, c_ref);
}
