//! Equivalence tests across execution strategies: the same mathematical
//! operation through different code paths must agree — in several cases
//! bit for bit, because the packing order, kernel, and summation order are
//! identical.

use fmm_core::compose;
use fmm_core::prelude::*;
use fmm_dense::{fill, norms, Matrix};
use fmm_gemm::BlockingParams;

/// A two-level plan [X, Y] and the one-level plan [nest(X, Y)] execute the
/// same products in the same order with the same coefficients — results
/// are bitwise identical.
#[test]
fn multilevel_plan_equals_nested_one_level() {
    let reg = fmm_core::registry::Registry::shared();
    let x = reg.get((2, 2, 2)).unwrap();
    let y = reg.get((2, 3, 2)).unwrap();

    let two_level = FmmPlan::from_arcs(vec![x.clone(), y.clone()]);
    let nested = FmmPlan::new(vec![compose::nest(&x, &y)]);
    assert_eq!(two_level.partition_dims(), nested.partition_dims());
    assert_eq!(two_level.rank(), nested.rank());

    let (mt, kt, nt) = two_level.partition_dims();
    let (m, k, n) = (mt * 5, kt * 4, nt * 3);
    let a = fill::bench_workload(m, k, 1);
    let b = fill::bench_workload(k, n, 2);

    for variant in Variant::ALL {
        let mut c1 = Matrix::zeros(m, n);
        let mut ctx = FmmContext::new(BlockingParams::tiny());
        fmm_execute(c1.as_mut(), a.as_ref(), b.as_ref(), &two_level, variant, &mut ctx);

        let mut c2 = Matrix::zeros(m, n);
        let mut ctx2 = FmmContext::new(BlockingParams::tiny());
        fmm_execute(c2.as_mut(), a.as_ref(), b.as_ref(), &nested, variant, &mut ctx2);

        assert_eq!(c1, c2, "variant {}", variant.name());
    }
}

/// Parallel and sequential executors produce bitwise-identical results
/// (same per-element summation order).
#[test]
fn parallel_equals_sequential_bitwise() {
    let plan = FmmPlan::new(vec![fmm_core::registry::strassen()]);
    for (m, k, n) in [(64, 48, 56), (130, 34, 66)] {
        let a = fill::bench_workload(m, k, 3);
        let b = fill::bench_workload(k, n, 4);
        for variant in Variant::ALL {
            let mut c_seq = Matrix::zeros(m, n);
            let mut ctx = FmmContext::new(BlockingParams::tiny());
            fmm_execute(c_seq.as_mut(), a.as_ref(), b.as_ref(), &plan, variant, &mut ctx);

            let mut c_par = Matrix::zeros(m, n);
            let mut ctx_p = FmmContext::new(BlockingParams::tiny());
            fmm_execute_parallel(
                c_par.as_mut(),
                a.as_ref(),
                b.as_ref(),
                &plan,
                variant,
                &mut ctx_p,
            );

            assert_eq!(c_seq, c_par, "variant {} m={m}", variant.name());
        }
    }
}

/// The three variants agree with each other to rounding error (they sum in
/// different orders, so not bitwise).
#[test]
fn variants_agree_to_rounding() {
    let plan = FmmPlan::uniform(fmm_core::registry::strassen(), 2);
    let (m, k, n) = (52, 44, 60);
    let a = fill::bench_workload(m, k, 5);
    let b = fill::bench_workload(k, n, 6);
    let mut results = Vec::new();
    for variant in Variant::ALL {
        let mut c = Matrix::zeros(m, n);
        let mut ctx = FmmContext::new(BlockingParams::tiny());
        fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, variant, &mut ctx);
        results.push(c);
    }
    for pair in results.windows(2) {
        let err = norms::max_abs_diff(pair[0].as_ref(), pair[1].as_ref());
        assert!(err < 1e-11, "variants disagree: {err}");
    }
}

/// Different blocking parameters change performance, never results
/// (beyond rounding).
#[test]
fn blocking_parameters_do_not_change_results() {
    let plan = FmmPlan::new(vec![fmm_core::registry::strassen()]);
    let (m, k, n) = (70, 50, 90);
    let a = fill::bench_workload(m, k, 7);
    let b = fill::bench_workload(k, n, 8);
    let mut base = Matrix::zeros(m, n);
    let mut ctx = FmmContext::new(BlockingParams::tiny());
    fmm_execute(base.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Abc, &mut ctx);
    for params in [
        BlockingParams::default(),
        BlockingParams { mr: 8, nr: 4, kc: 32, mc: 24, nc: 40 },
        BlockingParams { mr: 8, nr: 4, kc: 512, mc: 8, nc: 4 },
    ] {
        let mut c = Matrix::zeros(m, n);
        let mut ctx = FmmContext::new(params);
        fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Abc, &mut ctx);
        let err = norms::max_abs_diff(base.as_ref(), c.as_ref());
        assert!(err < 1e-11, "params {params:?}: err {err}");
    }
}

/// `gemm` (the public one-call API) equals the generalized driver's
/// single-term case.
#[test]
fn public_gemm_equals_driver() {
    let (m, k, n) = (100, 60, 80);
    let a = fill::bench_workload(m, k, 9);
    let b = fill::bench_workload(k, n, 10);
    let mut c1 = Matrix::zeros(m, n);
    fmm_gemm::gemm(c1.as_mut(), a.as_ref(), b.as_ref());
    let mut c2 = Matrix::zeros(m, n);
    let params = BlockingParams::default();
    let mut ws = fmm_gemm::GemmWorkspace::for_params(&params);
    fmm_gemm::driver::gemm_sums(
        &mut [fmm_gemm::DestTile::new(c2.as_mut(), 1.0)],
        &[(1.0, a.as_ref())],
        &[(1.0, b.as_ref())],
        &params,
        &mut ws,
    );
    assert_eq!(c1, c2);
}

/// Transposed-view operands (row-major matrices seen through stride swap)
/// multiply correctly.
#[test]
fn strided_and_transposed_operands() {
    let (m, k, n) = (24, 20, 28);
    let at = fill::bench_workload(k, m, 11); // Aᵀ stored, viewed transposed
    let b = fill::bench_workload(k, n, 12);
    let plan = FmmPlan::new(vec![fmm_core::registry::strassen()]);
    let mut ctx = FmmContext::new(BlockingParams::tiny());
    let mut c = Matrix::zeros(m, n);
    fmm_execute(c.as_mut(), at.as_ref().t(), b.as_ref(), &plan, Variant::Abc, &mut ctx);
    let c_ref = fmm_gemm::reference::matmul(at.as_ref().t(), b.as_ref());
    assert!(norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < 1e-11);
}
