//! Property-based tests over the core invariants.
#![allow(clippy::needless_range_loop)]

use fmm_core::compose;
use fmm_core::indexing::BlockGrid;
use fmm_core::peeling;
use fmm_core::prelude::*;
use fmm_core::registry::Registry;
use fmm_dense::{fill, norms};
use fmm_gemm::BlockingParams;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FMM == reference for arbitrary sizes (including fringes), arbitrary
    /// variant, and a sampled registry algorithm.
    #[test]
    fn fmm_matches_reference(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        algo_idx in 0usize..23,
        variant_idx in 0usize..3,
    ) {
        let reg = Registry::shared();
        let rows = reg.paper_rows();
        let (_, algo) = &rows[algo_idx % rows.len()];
        let plan = FmmPlan::from_arcs(vec![algo.clone()]);
        let variant = Variant::ALL[variant_idx];

        let a = fill::bench_workload(m, k, 11);
        let b = fill::bench_workload(k, n, 22);
        let mut c = fill::bench_workload(m, n, 33);
        let mut c_ref = c.clone();
        let mut ctx = FmmContext::new(BlockingParams::tiny());
        fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, variant, &mut ctx);
        fmm_gemm::reference::matmul_into(c_ref.as_mut(), a.as_ref(), b.as_ref());
        let err = norms::max_abs_diff(c.as_ref(), c_ref.as_ref());
        prop_assert!(err < norms::fmm_tolerance(k, 1), "err {err}");
    }

    /// Morton block indexing is a bijection for arbitrary level stacks.
    #[test]
    fn block_grid_bijection(levels in prop::collection::vec((1usize..4, 1usize..4), 1..4)) {
        let grid = BlockGrid::new(levels);
        let mut seen = vec![false; grid.len()];
        for flat in 0..grid.len() {
            let (r, c) = grid.coords(flat);
            prop_assert!(r < grid.rows() && c < grid.cols());
            let back = grid.flat(r, c);
            prop_assert_eq!(back, flat);
            prop_assert!(!seen[flat]);
            seen[flat] = true;
        }
    }

    /// Peeling covers the iteration space exactly once.
    #[test]
    fn peeling_partitions_exactly(
        m in 1usize..30,
        k in 1usize..30,
        n in 1usize..30,
        mt in 1usize..5,
        kt in 1usize..5,
        nt in 1usize..5,
    ) {
        let plan = peeling::peel(m, k, n, (mt, kt, nt));
        let (mc, kc, nc) = plan.core;
        prop_assert_eq!(mc % mt, 0);
        prop_assert_eq!(kc % kt, 0);
        prop_assert_eq!(nc % nt, 0);
        let core_flops = mc * kc * nc;
        prop_assert_eq!(core_flops + plan.rim_flops(), m * k * n);
    }

    /// Symmetry orientations of valid algorithms are valid (construction
    /// verifies; this exercises it over random registry picks).
    #[test]
    fn orientations_preserve_rank(algo_idx in 0usize..23) {
        let reg = Registry::shared();
        let rows = reg.paper_rows();
        let (_, algo) = &rows[algo_idx % rows.len()];
        for o in compose::all_orientations(algo) {
            prop_assert_eq!(o.rank(), algo.rank());
            let (m, k, n) = algo.dims();
            let dims = o.dims();
            let mut sorted_a = [m, k, n];
            let mut sorted_b = [dims.0, dims.1, dims.2];
            sorted_a.sort_unstable();
            sorted_b.sort_unstable();
            prop_assert_eq!(sorted_a, sorted_b);
        }
    }

    /// Direct sums add ranks and dims.
    #[test]
    fn stacking_adds_ranks(n1 in 1usize..4, n2 in 1usize..4) {
        let s = fmm_core::registry::strassen();
        let a = if n1 == 2 { s.clone() } else { compose::classical(2, 2, n1) };
        let b = if n2 == 2 { s } else { compose::classical(2, 2, n2) };
        let sum = compose::stack_n(&a, &b);
        prop_assert_eq!(sum.rank(), a.rank() + b.rank());
        prop_assert_eq!(sum.dims(), (2, 2, n1 + n2));
    }

    /// The packed-sum primitive equals materialize-then-pack.
    #[test]
    fn pack_sum_equals_add_then_pack(
        mb in 1usize..20,
        kb in 1usize..16,
        g0 in -2i32..3,
        g1 in -2i32..3,
    ) {
        let x = fill::bench_workload(mb, kb, 1);
        let y = fill::bench_workload(mb, kb, 2);
        let terms = [(g0 as f64, x.as_ref()), (g1 as f64, y.as_ref())];
        let panels = mb.div_ceil(8);
        let mut packed_direct = vec![0.0; panels * 8 * kb];
        fmm_gemm::pack::pack_a_sum(&mut packed_direct, &terms, 8);

        let mut sum = fmm_dense::Matrix::zeros(mb, kb);
        fmm_dense::ops::linear_combination(sum.as_mut(), &terms).unwrap();
        let mut packed_indirect = vec![0.0; panels * 8 * kb];
        fmm_gemm::pack::pack_a_sum(&mut packed_indirect, &[(1.0, sum.as_ref())], 8);
        for (i, (a, b)) in packed_direct.iter().zip(packed_indirect.iter()).enumerate() {
            prop_assert!((a - b).abs() < 1e-12, "index {i}: {a} vs {b}");
        }
    }
}

#[test]
fn registry_algorithms_all_pass_brent_exactly() {
    // Not a proptest (deterministic), but the central invariant: every
    // algorithm that reaches users is exactly verified.
    let reg = Registry::standard();
    for algo in reg.all() {
        assert!(fmm_core::brent::verify(algo).is_ok(), "{}", algo.name());
        assert_eq!(fmm_core::brent::count_violations(algo, 0.0), 0);
    }
}
