//! Property-style tests over the core invariants.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these run each property over a deterministic seeded sweep of case
//! parameters (an inline xorshift generator), 48 cases per property as the
//! original proptest configuration used.
#![allow(clippy::needless_range_loop)]

use fmm_core::compose;
use fmm_core::indexing::BlockGrid;
use fmm_core::peeling;
use fmm_core::prelude::*;
use fmm_core::registry::Registry;
use fmm_dense::{fill, norms};
use fmm_gemm::BlockingParams;

/// Deterministic case-parameter generator (xorshift64*).
struct Cases {
    state: u64,
}

impl Cases {
    fn new(seed: u64) -> Self {
        Self { state: seed.wrapping_mul(2685821657736338717).max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(2685821657736338717)
    }

    /// Uniform in `[lo, hi)`.
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

const CASES: usize = 48;

/// FMM == reference for arbitrary sizes (including fringes), arbitrary
/// variant, and a sampled registry algorithm.
#[test]
fn fmm_matches_reference() {
    let reg = Registry::shared();
    let rows = reg.paper_rows();
    let mut cases = Cases::new(11);
    for case in 0..CASES {
        let m = cases.usize_in(1, 48);
        let k = cases.usize_in(1, 48);
        let n = cases.usize_in(1, 48);
        let algo_idx = cases.usize_in(0, rows.len());
        let variant = Variant::ALL[cases.usize_in(0, 3)];
        let (_, algo) = &rows[algo_idx];
        let plan = FmmPlan::from_arcs(vec![algo.clone()]);

        let a = fill::bench_workload(m, k, 11);
        let b = fill::bench_workload(k, n, 22);
        let mut c = fill::bench_workload(m, n, 33);
        let mut c_ref = c.clone();
        let mut ctx = FmmContext::new(BlockingParams::tiny());
        fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, variant, &mut ctx);
        fmm_gemm::reference::matmul_into(c_ref.as_mut(), a.as_ref(), b.as_ref());
        let err = norms::max_abs_diff(c.as_ref(), c_ref.as_ref());
        assert!(
            err < norms::fmm_tolerance(k, 1),
            "case {case}: {} {} m={m} k={k} n={n}: err {err}",
            plan.describe(),
            variant.name()
        );
    }
}

/// Morton block indexing is a bijection for arbitrary level stacks.
#[test]
fn block_grid_bijection() {
    let mut cases = Cases::new(12);
    for case in 0..CASES {
        let n_levels = cases.usize_in(1, 4);
        let levels: Vec<(usize, usize)> =
            (0..n_levels).map(|_| (cases.usize_in(1, 4), cases.usize_in(1, 4))).collect();
        let grid = BlockGrid::new(levels.clone());
        let mut seen = vec![false; grid.len()];
        for flat in 0..grid.len() {
            let (r, c) = grid.coords(flat);
            assert!(r < grid.rows() && c < grid.cols(), "case {case}: levels {levels:?}");
            assert_eq!(grid.flat(r, c), flat, "case {case}: levels {levels:?}");
            assert!(!seen[flat], "case {case}: duplicate flat index {flat}");
            seen[flat] = true;
        }
    }
}

/// Peeling covers the iteration space exactly once.
#[test]
fn peeling_partitions_exactly() {
    let mut cases = Cases::new(13);
    for case in 0..CASES {
        let m = cases.usize_in(1, 30);
        let k = cases.usize_in(1, 30);
        let n = cases.usize_in(1, 30);
        let mt = cases.usize_in(1, 5);
        let kt = cases.usize_in(1, 5);
        let nt = cases.usize_in(1, 5);
        let plan = peeling::peel(m, k, n, (mt, kt, nt));
        let (mc, kc, nc) = plan.core;
        assert_eq!(mc % mt, 0, "case {case}");
        assert_eq!(kc % kt, 0, "case {case}");
        assert_eq!(nc % nt, 0, "case {case}");
        let core_flops = mc * kc * nc;
        assert_eq!(
            core_flops + plan.rim_flops(),
            m * k * n,
            "case {case}: m={m} k={k} n={n} tiles=({mt},{kt},{nt})"
        );
    }
}

/// Symmetry orientations of valid algorithms are valid (construction
/// verifies; this exercises it over every registry pick).
#[test]
fn orientations_preserve_rank() {
    let reg = Registry::shared();
    for (_, algo) in reg.paper_rows() {
        for o in compose::all_orientations(&algo) {
            assert_eq!(o.rank(), algo.rank());
            let (m, k, n) = algo.dims();
            let dims = o.dims();
            let mut sorted_a = [m, k, n];
            let mut sorted_b = [dims.0, dims.1, dims.2];
            sorted_a.sort_unstable();
            sorted_b.sort_unstable();
            assert_eq!(sorted_a, sorted_b);
        }
    }
}

/// Direct sums add ranks and dims.
#[test]
fn stacking_adds_ranks() {
    let s = fmm_core::registry::strassen();
    for n1 in 1usize..4 {
        for n2 in 1usize..4 {
            let a = if n1 == 2 { s.clone() } else { compose::classical(2, 2, n1) };
            let b = if n2 == 2 { s.clone() } else { compose::classical(2, 2, n2) };
            let sum = compose::stack_n(&a, &b);
            assert_eq!(sum.rank(), a.rank() + b.rank());
            assert_eq!(sum.dims(), (2, 2, n1 + n2));
        }
    }
}

/// The packed-sum primitive equals materialize-then-pack.
#[test]
fn pack_sum_equals_add_then_pack() {
    let mut cases = Cases::new(14);
    for case in 0..CASES {
        let mb = cases.usize_in(1, 20);
        let kb = cases.usize_in(1, 16);
        let g0 = cases.usize_in(0, 5) as f64 - 2.0;
        let g1 = cases.usize_in(0, 5) as f64 - 2.0;
        let x = fill::bench_workload(mb, kb, 1);
        let y = fill::bench_workload(mb, kb, 2);
        let terms = [(g0, x.as_ref()), (g1, y.as_ref())];
        let panels = mb.div_ceil(8);
        let mut packed_direct = vec![0.0; panels * 8 * kb];
        fmm_gemm::pack::pack_a_sum(&mut packed_direct, &terms, 8);

        let mut sum = fmm_dense::Matrix::zeros(mb, kb);
        fmm_dense::ops::linear_combination(sum.as_mut(), &terms).unwrap();
        let mut packed_indirect = vec![0.0; panels * 8 * kb];
        fmm_gemm::pack::pack_a_sum(&mut packed_indirect, &[(1.0, sum.as_ref())], 8);
        for (i, (a, b)) in packed_direct.iter().zip(packed_indirect.iter()).enumerate() {
            assert!(
                (a - b).abs() < 1e-12,
                "case {case}: mb={mb} kb={kb} g0={g0} g1={g1} index {i}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn registry_algorithms_all_pass_brent_exactly() {
    // Deterministic, but the central invariant: every algorithm that
    // reaches users is exactly verified.
    let reg = Registry::standard();
    for algo in reg.all() {
        assert!(fmm_core::brent::verify(algo).is_ok(), "{}", algo.name());
        assert_eq!(fmm_core::brent::count_violations(algo, 0.0), 0);
    }
}
