//! Numerical stability of FMM vs recursion depth.
//!
//! The paper (§2.2) notes that Strassen-like algorithms grow less stable
//! with each recursion level and that practical implementations use only
//! one or two levels. This example measures it: relative error of the
//! product against the classical reference for zero to three levels, for
//! Strassen and for a higher-rank family member.
//!
//! ```sh
//! cargo run --release --example stability
//! ```

use fmm_core::prelude::*;
use fmm_core::registry::Registry;
use fmm_dense::{fill, norms, Matrix};

fn main() {
    let n = 432; // divisible by 2^3 and 3^3 partitions alike
    let a = fill::bench_workload(n, n, 1);
    let b = fill::bench_workload(n, n, 2);
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    let reg = Registry::shared();

    println!("relative error vs classical product, n = {n}\n");
    println!("{:<12} {:>10} {:>12} {:>12} {:>12}", "algorithm", "levels=0", "1", "2", "3");

    for dims in [(2, 2, 2), (3, 3, 3)] {
        let algo = reg.get(dims).unwrap();
        let mut row = format!("{:<12}", format!("<{},{},{}>", dims.0, dims.1, dims.2));
        // Level 0 = plain blocked GEMM.
        let mut c = Matrix::zeros(n, n);
        fmm_gemm::gemm(c.as_mut(), a.as_ref(), b.as_ref());
        row.push_str(&format!(" {:>10.2e}", norms::rel_error(c.as_ref(), c_ref.as_ref())));
        for levels in 1..=3usize {
            let plan = FmmPlan::from_arcs(vec![algo.clone(); levels]);
            let mut c = Matrix::zeros(n, n);
            let mut ctx = FmmContext::with_defaults();
            fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Abc, &mut ctx);
            row.push_str(&format!(" {:>12.2e}", norms::rel_error(c.as_ref(), c_ref.as_ref())));
        }
        println!("{row}");
    }
    println!("\nError grows by a small constant factor per level (paper §2.2:");
    println!("practical implementations stop at one or two levels).");
}
