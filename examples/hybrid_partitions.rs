//! Hybrid multi-level partitions (paper §5.2 / Figure 9): when `k` is
//! close to `2·3·k_c`, mixing a factor-2 and a factor-3 partition along `k`
//! beats both homogeneous two-level choices.
//!
//! ```sh
//! cargo run --release --example hybrid_partitions
//! ```

use fmm_core::prelude::*;
use fmm_core::registry::Registry;
use fmm_dense::{fill, Matrix};
use std::time::Instant;

fn main() {
    let reg = Registry::shared();
    let a222 = reg.get((2, 2, 2)).unwrap();
    let a232 = reg.get((2, 3, 2)).unwrap();

    let plans = [
        ("<2,2,2> one-level ", FmmPlan::from_arcs(vec![a222.clone()])),
        ("<2,2,2>+<2,2,2>   ", FmmPlan::from_arcs(vec![a222.clone(), a222.clone()])),
        ("<2,3,2>+<2,3,2>   ", FmmPlan::from_arcs(vec![a232.clone(), a232.clone()])),
        ("<2,2,2>+<2,3,2>   ", FmmPlan::from_arcs(vec![a222.clone(), a232.clone()])),
    ];

    let (mn, k) = (1080, 1200); // k ≈ 2·3·kc·0.78 — the hybrid sweet spot
    println!("m = n = {mn}, k = {k}, ABC variant\n");
    println!("{:<20} {:>8} {:>12} {:>12}", "plan", "R_L", "GFLOPS", "k-partition");

    let a = fill::bench_workload(mn, k, 1);
    let b = fill::bench_workload(k, mn, 2);
    let mut c = Matrix::zeros(mn, mn);

    for (label, plan) in &plans {
        let mut ctx = FmmContext::with_defaults();
        // Warm-up + timed run.
        fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), plan, Variant::Abc, &mut ctx);
        let t0 = Instant::now();
        fmm_execute(c.as_mut(), a.as_ref(), b.as_ref(), plan, Variant::Abc, &mut ctx);
        let gf = fmm_core::counts::effective_gflops(mn, k, mn, t0.elapsed().as_secs_f64());
        let (_, kt, _) = plan.partition_dims();
        println!("{label:<20} {:>8} {gf:>12.2} {:>12}", plan.rank(), format!("k/{kt}"));
    }
    println!("\nThe Kronecker representation makes mixing levels free (paper §3.4).");
}
