//! Quickstart: multiply two matrices with a fast matrix multiplication
//! algorithm, compare with the classical product, and show what the
//! poly-algorithm selector chose.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fmm_core::prelude::*;
use fmm_dense::{fill, norms, Matrix};

fn main() {
    let (m, k, n) = (1000, 900, 1100); // deliberately not divisible by 2
    println!("C({m}x{n}) += A({m}x{k}) · B({k}x{n})\n");

    let a = fill::bench_workload(m, k, 1);
    let b = fill::bench_workload(k, n, 2);

    // 1. The one-liner: model-guided selection over the whole registry.
    let mut c_auto = Matrix::zeros(m, n);
    let t0 = std::time::Instant::now();
    fmm::multiply(c_auto.as_mut(), a.as_ref(), b.as_ref());
    let auto_time = t0.elapsed();

    // 2. Explicit control: one-level Strassen, ABC variant.
    let plan = FmmPlan::new(vec![registry::strassen()]);
    let mut ctx = FmmContext::with_defaults();
    let mut c_strassen = Matrix::zeros(m, n);
    let t0 = std::time::Instant::now();
    fmm_execute(c_strassen.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Abc, &mut ctx);
    let strassen_time = t0.elapsed();

    // 3. The plain blocked GEMM baseline.
    let mut c_gemm = Matrix::zeros(m, n);
    let t0 = std::time::Instant::now();
    fmm_gemm::gemm(c_gemm.as_mut(), a.as_ref(), b.as_ref());
    let gemm_time = t0.elapsed();

    let gfl = |d: std::time::Duration| fmm_core::counts::effective_gflops(m, k, n, d.as_secs_f64());
    println!("auto-selected : {auto_time:>10.2?}  ({:6.2} effective GFLOPS)", gfl(auto_time));
    println!("strassen ABC  : {strassen_time:>10.2?}  ({:6.2} effective GFLOPS)", gfl(strassen_time));
    println!("blocked GEMM  : {gemm_time:>10.2?}  ({:6.2} effective GFLOPS)", gfl(gemm_time));

    let err = norms::rel_error(c_strassen.as_ref(), c_gemm.as_ref());
    println!("\nmax relative deviation Strassen vs GEMM: {err:.2e}");
    assert!(err < 1e-10, "results must agree");
    let err = norms::rel_error(c_auto.as_ref(), c_gemm.as_ref());
    assert!(err < 1e-9, "results must agree");
    println!("all three products agree ✓");
}
