//! Quickstart: multiply two matrices through the engine, compare with the
//! classical product, and show what the poly-algorithm selector chose and
//! what the caches did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fmm_core::prelude::*;
use fmm_dense::{fill, norms, Matrix};

fn main() {
    let (m, k, n) = (1000, 900, 1100); // deliberately not divisible by 2
    println!("C({m}x{n}) += A({m}x{k}) · B({k}x{n})\n");

    let a = fill::bench_workload(m, k, 1);
    let b = fill::bench_workload(k, n, 2);

    // 1. The one-liner: the process-global engine routes via the model.
    //    The first call pays for ranking + plan composition; repeats hit
    //    the decision cache and reuse pooled workspaces.
    let engine = fmm::engine();
    println!("engine decision for this shape: {}", engine.decision_label(m, k, n));
    let mut c_auto = Matrix::zeros(m, n);
    let t0 = std::time::Instant::now();
    fmm::multiply(c_auto.as_mut(), a.as_ref(), b.as_ref());
    let cold_time = t0.elapsed();
    let t0 = std::time::Instant::now();
    fmm::multiply(c_auto.as_mut(), a.as_ref(), b.as_ref());
    let warm_time = t0.elapsed();
    let stats = engine.stats();
    println!(
        "engine stats: {} executions, {} decision hits, {} rankings, {} plan compositions\n",
        stats.executions, stats.decision_hits, stats.rankings, stats.plan_compositions
    );

    // 2. Explicit control: one-level Strassen, ABC variant, through the
    //    engine's pooled contexts.
    let plan = FmmPlan::new(vec![registry::strassen()]);
    let mut c_strassen = Matrix::zeros(m, n);
    let t0 = std::time::Instant::now();
    engine.multiply_with_plan(c_strassen.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Abc);
    let strassen_time = t0.elapsed();

    // 3. The plain blocked GEMM baseline.
    let mut c_gemm = Matrix::zeros(m, n);
    let t0 = std::time::Instant::now();
    fmm_gemm::gemm(c_gemm.as_mut(), a.as_ref(), b.as_ref());
    let gemm_time = t0.elapsed();

    let gfl = |d: std::time::Duration| fmm_core::counts::effective_gflops(m, k, n, d.as_secs_f64());
    println!("auto (cold)   : {cold_time:>10.2?}  ({:6.2} effective GFLOPS)", gfl(cold_time));
    println!("auto (warm)   : {warm_time:>10.2?}  ({:6.2} effective GFLOPS)", gfl(warm_time));
    println!(
        "strassen ABC  : {strassen_time:>10.2?}  ({:6.2} effective GFLOPS)",
        gfl(strassen_time)
    );
    println!("blocked GEMM  : {gemm_time:>10.2?}  ({:6.2} effective GFLOPS)", gfl(gemm_time));

    let err = norms::rel_error(c_strassen.as_ref(), c_gemm.as_ref());
    println!("\nmax relative deviation Strassen vs GEMM: {err:.2e}");
    assert!(err < 1e-10, "results must agree");
    // c_auto accumulated two multiplies; compare against 2x the product.
    let mut c_gemm2 = c_gemm.clone();
    fmm_gemm::gemm(c_gemm2.as_mut(), a.as_ref(), b.as_ref());
    let err = norms::rel_error(c_auto.as_ref(), c_gemm2.as_ref());
    assert!(err < 1e-9, "results must agree");
    println!("all products agree ✓");
}
