//! Discover a fast matrix multiplication algorithm from scratch: run the
//! simulated-annealing searcher on `<2,2,2>` at rank 7 and verify that the
//! result is a genuine Strassen-class algorithm.
//!
//! ```sh
//! cargo run --release --example discover            # <2,2,2> rank 7
//! cargo run --release --example discover 2 2 3 11   # custom target
//! ```

use fmm_search::anneal::{anneal, AnnealConfig};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (m, k, n, rank) = if args.len() >= 5 {
        (
            args[1].parse().unwrap(),
            args[2].parse().unwrap(),
            args[3].parse().unwrap(),
            args[4].parse().unwrap(),
        )
    } else {
        (2, 2, 2, 7)
    };

    println!("searching for a <{m},{k},{n}> algorithm of rank {rank}...");
    let mut cfg = AnnealConfig::new((m, k, n), rank);
    cfg.budget = Duration::from_secs(60);
    cfg.restarts = 2_000;
    let out = anneal(&cfg);

    match out.algorithm {
        Some(algo) => {
            println!(
                "found after {} restart(s) in {:.1}s: {algo}",
                out.restarts_run,
                out.elapsed.as_secs_f64()
            );
            println!("\nU (A-side combinations), one column per product:");
            for i in 0..algo.u().rows() {
                let row: Vec<String> =
                    (0..algo.rank()).map(|r| format!("{:>4}", algo.u().at(i, r))).collect();
                println!("  {}", row.join(""));
            }
            println!("\nverified against all Brent equations ✓");
            println!("registry JSON:\n{}", &algo.to_json()[..200.min(algo.to_json().len())]);
        }
        None => {
            println!(
                "not found within budget: best objective {} over {} restarts ({:.1}s)",
                out.best_objective,
                out.restarts_run,
                out.elapsed.as_secs_f64()
            );
            println!("(larger targets need longer campaigns; see fmm-search docs)");
        }
    }
}
