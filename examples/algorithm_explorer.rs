//! Explore the algorithm registry: every `<m̃,k̃,ñ>` shape of the paper's
//! Figure 2 with its rank, provenance, theoretical speedup, and the
//! model's pick of the best variant for two problem shapes.
//!
//! ```sh
//! cargo run --release --example algorithm_explorer
//! ```

use fmm_core::counts::PlanCounts;
use fmm_core::registry::Registry;
use fmm_core::FmmPlan;
use fmm_model::{predict_fmm, predict_gemm, ArchParams, Impl};

fn main() {
    let reg = Registry::shared();
    let arch = ArchParams::paper_machine();
    println!(
        "{:<10} {:>4} {:>8} {:>9} {:>10} {:>16} {:>16}",
        "dims", "R", "R_paper", "theory%", "nnz(UVW)", "best@rank-k", "best@square"
    );
    for (entry, algo) in reg.paper_rows() {
        let plan = FmmPlan::from_arcs(vec![algo.clone()]);
        let counts = PlanCounts::of(&plan);
        let best_for = |m: usize, k: usize, n: usize| -> String {
            let mut best = ("GEMM", predict_gemm(m, k, n, &arch).total);
            for impl_ in Impl::FMM_VARIANTS {
                let p = predict_fmm(impl_, &counts, m, k, n, &arch);
                if p.total < best.1 {
                    best = (impl_.name(), p.total);
                }
            }
            best.0.to_string()
        };
        let (mt, kt, nt) = entry.dims;
        println!(
            "{:<10} {:>4} {:>8} {:>9.1} {:>10} {:>16} {:>16}",
            format!("<{mt},{kt},{nt}>"),
            algo.rank(),
            entry.r_paper,
            (algo.speedup_per_level() - 1.0) * 100.0,
            counts.nnz_u + counts.nnz_v + counts.nnz_w,
            best_for(14400, 480, 14400),
            best_for(12000, 12000, 12000),
        );
    }
    println!("\nEvery algorithm above passed the exact Brent-equation check at load.");
    println!("R > R_paper rows use constructive fallbacks (see DESIGN.md §7).");
}
