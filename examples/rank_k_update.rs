//! The paper's headline scenario: rank-k updates (`m = n` large, `k`
//! small), the shape where the ABC variant shines because it needs no
//! workspace and touches `C` through the micro-kernel only.
//!
//! Sweeps `k` and prints effective GFLOPS for GEMM and the three variants
//! of one-level Strassen — all executed through one [`fmm::FmmEngine`]
//! whose pooled contexts persist across the sweep — plus what the engine's
//! model routing would pick for each shape.
//!
//! ```sh
//! cargo run --release --example rank_k_update
//! ```

use fmm_core::prelude::*;
use fmm_dense::{fill, Matrix};
use std::time::Instant;

fn time_gflops(m: usize, k: usize, n: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let t0 = Instant::now();
    f();
    fmm_core::counts::effective_gflops(m, k, n, t0.elapsed().as_secs_f64())
}

fn main() {
    let mn = 1440;
    println!("rank-k updates: m = n = {mn}, one-level <2,2,2>\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}  engine routes to",
        "k", "GEMM", "ABC", "AB", "Naive"
    );

    let engine = fmm::engine();
    let plan = FmmPlan::new(vec![registry::strassen()]);
    for k in [128usize, 256, 512, 1024, 1536] {
        let a = fill::bench_workload(mn, k, 1);
        let b = fill::bench_workload(k, mn, 2);
        let mut c = Matrix::zeros(mn, mn);

        let gemm = time_gflops(mn, k, mn, || {
            fmm_gemm::gemm(c.as_mut(), a.as_ref(), b.as_ref());
        });
        let mut rates = Vec::new();
        for variant in [Variant::Abc, Variant::Ab, Variant::Naive] {
            let rate = time_gflops(mn, k, mn, || {
                engine.multiply_with_plan(c.as_mut(), a.as_ref(), b.as_ref(), &plan, variant);
            });
            rates.push(rate);
        }
        println!(
            "{k:>6} {gemm:>10.2} {:>10.2} {:>10.2} {:>10.2}  {}",
            rates[0],
            rates[1],
            rates[2],
            engine.decision_label(mn, k, mn)
        );
    }
    println!("\n(ABC avoids all M_r traffic: best at small k, paper §4.3)");
    let stats = engine.stats();
    println!(
        "engine stats: {} executions, {} contexts allocated, {} arena grows",
        stats.executions, stats.context_allocations, stats.arena_grows
    );
}
