//! Quickstart for the single-precision path: multiply two `f32` matrices
//! through the process-global `f32` engine, compare against an
//! `f64`-computed reference at the `Scalar`-derived accuracy bound, and
//! race the `f32` kernel stack (16x4 AVX2 register tile where available)
//! against the `f64` one.
//!
//! ```sh
//! cargo run --release --example quickstart_f32
//! ```

use fmm_dense::{fill, norms, Matrix, Scalar};
use fmm_gemm::GemmScalar;

fn main() {
    let (m, k, n) = (1000, 900, 1100); // deliberately not divisible by 2
    println!("C({m}x{n}) += A({m}x{k}) · B({k}x{n}) in f32\n");
    println!("f32 micro-kernel: {}", <f32 as GemmScalar>::micro_kernel_name());
    println!("f64 micro-kernel: {}\n", <f64 as GemmScalar>::micro_kernel_name());

    // The same value stream at both precisions: bench_workload_t draws in
    // f64 and narrows, so the f32 operands are exactly the f64 ones rounded.
    let a = fill::bench_workload_t::<f32>(m, k, 1);
    let b = fill::bench_workload_t::<f32>(k, n, 2);

    let engine = fmm::engine_f32();
    println!("f32 engine decision for this shape: {}", engine.decision_label(m, k, n));

    let mut c = Matrix::<f32>::zeros(m, n);
    let t0 = std::time::Instant::now();
    fmm::multiply_f32(c.as_mut(), a.as_ref(), b.as_ref());
    let cold = t0.elapsed();
    let mut c_warm = Matrix::<f32>::zeros(m, n);
    let t0 = std::time::Instant::now();
    fmm::multiply_f32(c_warm.as_mut(), a.as_ref(), b.as_ref());
    let warm = t0.elapsed();

    // The f64 path on the same (widened) inputs, for the speed comparison
    // and as the accuracy oracle.
    let a64 = a.cast::<f64>();
    let b64 = b.cast::<f64>();
    let mut c64 = Matrix::<f64>::zeros(m, n);
    fmm::multiply(c64.as_mut(), a64.as_ref(), b64.as_ref()); // cold, untimed
    let mut c64_warm = Matrix::<f64>::zeros(m, n);
    let t0 = std::time::Instant::now();
    fmm::multiply(c64_warm.as_mut(), a64.as_ref(), b64.as_ref());
    let warm64 = t0.elapsed();

    let gfl = |d: std::time::Duration| fmm_core::counts::effective_gflops(m, k, n, d.as_secs_f64());
    println!("f32 (cold) : {cold:>10.2?}  ({:6.2} effective GFLOPS)", gfl(cold));
    println!("f32 (warm) : {warm:>10.2?}  ({:6.2} effective GFLOPS)", gfl(warm));
    println!("f64 (warm) : {warm64:>10.2?}  ({:6.2} effective GFLOPS)", gfl(warm64));

    // The accuracy contract: within the f32 epsilon-derived bound of the
    // f64 result (the engine considers up to 2 plan levels).
    let err = norms::rel_error(c_warm.cast::<f64>().as_ref(), c64_warm.as_ref());
    let bound = <f32 as Scalar>::accuracy_bound(k, 2);
    println!("\nrelative error vs f64 reference: {err:.2e} (bound {bound:.2e})");
    assert!(err < bound, "f32 result must satisfy the Scalar accuracy bound");
    println!("f32 product within its accuracy contract ✓");
}
