//! Generate specialized Rust source for an FMM plan — the artifact the
//! paper's code generator produces (§4.1), with packing sums and C-side
//! updates fully unrolled from the `[[U,V,W]]` coefficients.
//!
//! ```sh
//! cargo run --release --example codegen              # one-level Strassen
//! cargo run --release --example codegen 2            # two-level Strassen
//! ```

use fmm_core::{registry, FmmPlan};
use fmm_gen::{generate_module, GenSpec};

fn main() {
    let levels: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let plan = FmmPlan::uniform(registry::strassen(), levels);
    let spec = GenSpec::new(format!("strassen_{levels}l_abc"), plan);
    let src = generate_module(&spec);
    println!("{src}");
    eprintln!("// {} lines generated; compile against fmm-dense + fmm-gemm.", src.lines().count());
}
